//! Time-varying partitioning: the [`PartitionSchedule`] value type and
//! the flush accounting of a live reconfiguration.
//!
//! The paper's premise is an OS that *manages* the partitioned L2 as
//! workload demands change. A [`PartitionSchedule`] is the OS's plan for
//! one run: an ordered list of `(at_cycle, OrganizationSpec)` steps, the
//! first of which (the implicit step 0) is the organisation the cache is
//! built with, and every later one a **repartition event** the platform
//! applies to the live cache at that exact cycle boundary via
//! [`CacheModel::reconfigure`](crate::CacheModel::reconfigure).
//!
//! Reconfiguration is like-for-like: a new [`PartitionMap`] on a
//! set-partitioned cache, a new
//! [`WayAllocation`](crate::WayAllocation) on a way-partitioned cache,
//! or the trivial shared-to-shared no-op. Lines whose set/way ownership
//! changes are invalidated (dirty ones write back), and the counts come
//! back as [`FlushStats`] so the platform can charge the flush traffic
//! through the bus/DRAM timing path.

use std::fmt;

use serde::{Deserialize, Serialize};

use compmem_trace::RegionTable;

use crate::error::CacheError;
use crate::spec::OrganizationSpec;

/// Line counts of one live reconfiguration: how many resident lines lost
/// their set/way ownership and were invalidated, and how many of those
/// were dirty and must be written back to DRAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlushStats {
    /// Lines invalidated because their set/way ownership changed.
    pub invalidated: u64,
    /// Invalidated lines that were dirty (each one is a DRAM write-back
    /// and a bus transfer).
    pub written_back: u64,
}

impl FlushStats {
    /// Accumulates another reconfiguration's counts into this one.
    pub fn absorb(&mut self, other: FlushStats) {
        self.invalidated += other.invalidated;
        self.written_back += other.written_back;
    }
}

impl fmt::Display for FlushStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lines invalidated, {} written back",
            self.invalidated, self.written_back
        )
    }
}

/// One step of a [`PartitionSchedule`]: from `at_cycle` on, the cache
/// runs under `organization`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStep {
    /// First cycle the organisation applies to. Step 0 is implicit: its
    /// cycle is always 0 (the organisation the cache is built with).
    pub at_cycle: u64,
    /// The organisation in force from `at_cycle` on.
    pub organization: OrganizationSpec,
}

/// A validated, time-ordered partitioning policy for one run.
///
/// ```
/// use compmem_cache::{CacheGeometry, OrganizationSpec, PartitionKey, PartitionMap,
///     PartitionSchedule};
/// use compmem_trace::TaskId;
/// # fn main() -> Result<(), compmem_cache::CacheError> {
/// let g = CacheGeometry::new(64, 4)?;
/// let t = |i| PartitionKey::Task(TaskId::new(i));
/// let a = PartitionMap::pack(g, &[(t(0), 32), (t(1), 16)])?;
/// let b = PartitionMap::pack(g, &[(t(0), 16), (t(1), 32)])?;
/// let schedule = PartitionSchedule::new(vec![
///     (0, OrganizationSpec::SetPartitioned(a)),
///     (10_000, OrganizationSpec::SetPartitioned(b)),
/// ])?;
/// assert_eq!(schedule.len(), 2);
/// assert!(!schedule.is_static());
/// assert_eq!(schedule.switches().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSchedule {
    steps: Vec<ScheduleStep>,
}

impl PartitionSchedule {
    /// The static (single-step) schedule: one organisation for the whole
    /// run. This is what every pre-schedule call site builds implicitly.
    pub fn single(organization: OrganizationSpec) -> Self {
        PartitionSchedule {
            steps: vec![ScheduleStep {
                at_cycle: 0,
                organization,
            }],
        }
    }

    /// Builds a schedule from `(at_cycle, organization)` steps.
    ///
    /// # Errors
    ///
    /// * [`CacheError::EmptySchedule`] if `steps` is empty,
    /// * [`CacheError::ScheduleOutOfOrder`] if the first step is not at
    ///   cycle 0 or the cycles are not strictly increasing,
    /// * [`CacheError::ReconfigureUnsupported`] if a later step names an
    ///   organisation the previous step's cache cannot morph into
    ///   (switches are like-for-like; the profiling organisation cannot
    ///   be scheduled at all beyond a static single step).
    pub fn new(steps: Vec<(u64, OrganizationSpec)>) -> Result<Self, CacheError> {
        let Some(first) = steps.first() else {
            return Err(CacheError::EmptySchedule);
        };
        if first.0 != 0 {
            return Err(CacheError::ScheduleOutOfOrder { at_cycle: first.0 });
        }
        for pair in steps.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(CacheError::ScheduleOutOfOrder {
                    at_cycle: pair[1].0,
                });
            }
            let (from, to) = (pair[0].1.label(), pair[1].1.label());
            if from != to || matches!(pair[1].1, OrganizationSpec::Profiling(_)) {
                return Err(CacheError::ReconfigureUnsupported { from, to });
            }
        }
        Ok(PartitionSchedule {
            steps: steps
                .into_iter()
                .map(|(at_cycle, organization)| ScheduleStep {
                    at_cycle,
                    organization,
                })
                .collect(),
        })
    }

    /// The organisation the run starts under (step 0).
    pub fn initial(&self) -> &OrganizationSpec {
        &self.steps[0].organization
    }

    /// All steps, in cycle order (step 0 first).
    pub fn steps(&self) -> &[ScheduleStep] {
        &self.steps
    }

    /// The repartition events: every step after the implicit step 0.
    pub fn switches(&self) -> &[ScheduleStep] {
        &self.steps[1..]
    }

    /// Number of steps (at least 1).
    #[allow(clippy::len_without_is_empty)] // a schedule is never empty
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` for a single-step schedule (no repartitioning; the
    /// pre-schedule behaviour of every run).
    pub fn is_static(&self) -> bool {
        self.steps.len() == 1
    }

    /// Short name of the initial organisation, matching
    /// [`OrganizationSpec::label`].
    pub fn label(&self) -> &'static str {
        self.initial().label()
    }

    /// Checks every step against the cache geometry and region table the
    /// schedule will run over: partitioned steps must target the same
    /// geometry and cover every region, so that applying a switch to the
    /// live cache cannot fail mid-run.
    ///
    /// # Errors
    ///
    /// Propagates the step's coverage/geometry error, naming the first
    /// offending step.
    pub fn validate_for(
        &self,
        geometry: crate::CacheGeometry,
        regions: &RegionTable,
    ) -> Result<(), CacheError> {
        for step in &self.steps {
            match &step.organization {
                OrganizationSpec::SetPartitioned(map) => {
                    if map.geometry() != geometry {
                        return Err(CacheError::InvalidGeometry {
                            parameter: "schedule partition-map sets",
                            value: u64::from(map.geometry().sets()),
                        });
                    }
                    map.validate_covers(regions)?;
                }
                OrganizationSpec::WayPartitioned(allocation) => {
                    if allocation.geometry() != geometry {
                        return Err(CacheError::InvalidGeometry {
                            parameter: "schedule way-allocation sets",
                            value: u64::from(allocation.geometry().sets()),
                        });
                    }
                    allocation.validate_covers(regions)?;
                }
                OrganizationSpec::Shared | OrganizationSpec::Profiling(_) => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for PartitionSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_static() {
            return write!(f, "{} (static)", self.label());
        }
        write!(f, "{} x {} steps (switch at", self.label(), self.len())?;
        for (i, step) in self.switches().iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            write!(f, "{sep}{}", step.at_cycle)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionKey, PartitionMap};
    use crate::{CacheGeometry, WayAllocation};
    use compmem_trace::{RegionKind, TaskId};

    fn geometry() -> CacheGeometry {
        CacheGeometry::new(64, 4).unwrap()
    }

    fn task(i: u32) -> PartitionKey {
        PartitionKey::Task(TaskId::new(i))
    }

    fn map(sizes: &[(PartitionKey, u32)]) -> OrganizationSpec {
        OrganizationSpec::SetPartitioned(PartitionMap::pack(geometry(), sizes).unwrap())
    }

    #[test]
    fn single_step_schedules_are_static() {
        let s = PartitionSchedule::single(OrganizationSpec::Shared);
        assert!(s.is_static());
        assert_eq!(s.len(), 1);
        assert!(s.switches().is_empty());
        assert_eq!(s.label(), "shared");
        assert_eq!(s.to_string(), "shared (static)");
    }

    #[test]
    fn schedules_validate_order_and_transitions() {
        assert!(matches!(
            PartitionSchedule::new(vec![]),
            Err(CacheError::EmptySchedule)
        ));
        assert!(matches!(
            PartitionSchedule::new(vec![(5, OrganizationSpec::Shared)]),
            Err(CacheError::ScheduleOutOfOrder { at_cycle: 5 })
        ));
        assert!(matches!(
            PartitionSchedule::new(vec![
                (0, OrganizationSpec::Shared),
                (100, OrganizationSpec::Shared),
                (100, OrganizationSpec::Shared),
            ]),
            Err(CacheError::ScheduleOutOfOrder { at_cycle: 100 })
        ));
        // Cross-organisation switches are rejected up front.
        assert!(matches!(
            PartitionSchedule::new(vec![
                (0, OrganizationSpec::Shared),
                (100, map(&[(task(0), 32)])),
            ]),
            Err(CacheError::ReconfigureUnsupported {
                from: "shared",
                to: "set-partitioned"
            })
        ));
        let ok = PartitionSchedule::new(vec![
            (0, map(&[(task(0), 32)])),
            (100, map(&[(task(0), 16)])),
            (250, map(&[(task(0), 64)])),
        ])
        .unwrap();
        assert_eq!(ok.len(), 3);
        assert_eq!(ok.switches().len(), 2);
        assert_eq!(ok.switches()[1].at_cycle, 250);
        assert_eq!(
            ok.to_string(),
            "set-partitioned x 3 steps (switch at 100, 250)"
        );
    }

    #[test]
    fn validate_for_checks_geometry_and_coverage() {
        let mut table = RegionTable::new();
        table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                4096,
            )
            .unwrap();
        let good = PartitionSchedule::new(vec![
            (0, map(&[(task(0), 32)])),
            (100, map(&[(task(0), 16)])),
        ])
        .unwrap();
        good.validate_for(geometry(), &table).unwrap();

        // A map over the wrong geometry is rejected.
        let other = CacheGeometry::new(128, 4).unwrap();
        assert!(matches!(
            good.validate_for(other, &table),
            Err(CacheError::InvalidGeometry { .. })
        ));

        // A step whose map misses a region is rejected.
        let uncovered = PartitionSchedule::new(vec![
            (0, map(&[(task(0), 32)])),
            (100, map(&[(task(1), 16)])),
        ])
        .unwrap();
        assert!(matches!(
            uncovered.validate_for(geometry(), &table),
            Err(CacheError::UnassignedRegion { .. })
        ));

        // Way-partitioned schedules validate the same way.
        let ways = PartitionSchedule::new(vec![
            (
                0,
                OrganizationSpec::WayPartitioned(WayAllocation::equal_split(
                    geometry(),
                    &[task(0)],
                )),
            ),
            (
                50,
                OrganizationSpec::WayPartitioned(WayAllocation::equal_split(
                    geometry(),
                    &[task(1)],
                )),
            ),
        ])
        .unwrap();
        assert!(matches!(
            ways.validate_for(geometry(), &table),
            Err(CacheError::UnassignedRegion { .. })
        ));
    }

    #[test]
    fn flush_stats_absorb_and_display() {
        let mut a = FlushStats {
            invalidated: 3,
            written_back: 1,
        };
        a.absorb(FlushStats {
            invalidated: 2,
            written_back: 2,
        });
        assert_eq!(
            a,
            FlushStats {
                invalidated: 5,
                written_back: 3
            }
        );
        assert_eq!(a.to_string(), "5 lines invalidated, 3 written back");
    }
}
