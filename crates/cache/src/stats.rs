//! Miss and hit accounting, overall and attributed per task / region /
//! partition.

use serde::{Deserialize, Serialize};

use compmem_trace::AccessKind;

/// Aggregate counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Misses to lines never referenced before (cold / compulsory misses).
    pub cold_misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Instruction-fetch accesses.
    pub instr_accesses: u64,
    /// Instruction-fetch misses.
    pub instr_misses: u64,
    /// Load accesses.
    pub load_accesses: u64,
    /// Load misses.
    pub load_misses: u64,
    /// Store accesses.
    pub store_accesses: u64,
    /// Store misses.
    pub store_misses: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access outcome.
    pub(crate) fn record(&mut self, kind: AccessKind, hit: bool, cold: bool, writeback: bool) {
        self.accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            if cold {
                self.cold_misses += 1;
            }
        }
        if writeback {
            self.writebacks += 1;
        }
        let (acc, miss) = match kind {
            AccessKind::InstrFetch => (&mut self.instr_accesses, &mut self.instr_misses),
            AccessKind::Load => (&mut self.load_accesses, &mut self.load_misses),
            AccessKind::Store => (&mut self.store_accesses, &mut self.store_misses),
        };
        *acc += 1;
        if !hit {
            *miss += 1;
        }
    }

    /// Miss rate (misses / accesses), zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate (hits / accesses), zero when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Misses that are not cold (inter-task conflict plus capacity misses).
    pub fn non_cold_misses(&self) -> u64 {
        self.misses - self.cold_misses
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.cold_misses += other.cold_misses;
        self.writebacks += other.writebacks;
        self.instr_accesses += other.instr_accesses;
        self.instr_misses += other.instr_misses;
        self.load_accesses += other.load_accesses;
        self.load_misses += other.load_misses;
        self.store_accesses += other.store_accesses;
        self.store_misses += other.store_misses;
    }
}

/// Per-key access/miss counters (key = task, region or partition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyStats {
    /// Accesses attributed to the key.
    pub accesses: u64,
    /// Misses attributed to the key.
    pub misses: u64,
}

impl KeyStats {
    /// Hits attributed to the key.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Miss rate for the key, zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A map of per-key counters kept in deterministic (sorted) order.
///
/// The map sits on the per-access hot path of every cache (task and region
/// attribution), so it is a sorted vector with a last-hit memo rather than
/// a tree: access streams are bursty — long runs share one task and one
/// region — so the memo makes the common case a single comparison, and the
/// handful of distinct keys keeps the insert path cheap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsByKey<K: Ord> {
    /// `(key, counters)` sorted by key.
    entries: Vec<(K, KeyStats)>,
    /// Index of the most recently recorded key.
    last: usize,
}

/// Equality ignores the memo: two maps with the same counters are equal
/// regardless of which key was recorded last.
impl<K: Ord> PartialEq for StatsByKey<K> {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl<K: Ord> Eq for StatsByKey<K> {}

impl<K: Ord> Default for StatsByKey<K> {
    fn default() -> Self {
        StatsByKey {
            entries: Vec::new(),
            last: 0,
        }
    }
}

impl<K: Ord> StatsByKey<K> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access outcome for `key`.
    pub fn record(&mut self, key: K, hit: bool) {
        if let Some((k, stats)) = self.entries.get_mut(self.last) {
            if *k == key {
                stats.accesses += 1;
                if !hit {
                    stats.misses += 1;
                }
                return;
            }
        }
        let index = match self.entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(index) => index,
            Err(index) => {
                self.entries.insert(index, (key, KeyStats::default()));
                index
            }
        };
        self.last = index;
        let stats = &mut self.entries[index].1;
        stats.accesses += 1;
        if !hit {
            stats.misses += 1;
        }
    }

    /// Returns the counters for `key` (zeros if never seen).
    pub fn get(&self, key: &K) -> KeyStats {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .map(|index| self.entries[index].1)
            .unwrap_or_default()
    }

    /// Iterates over `(key, counters)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &KeyStats)> {
        self.entries.iter().map(|(k, s)| (k, s))
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no key has been seen.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of misses over all keys.
    pub fn total_misses(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s.misses).sum()
    }

    /// Sum of accesses over all keys.
    pub fn total_accesses(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s.accesses).sum()
    }
}

impl<K: Ord + Clone> StatsByKey<K> {
    /// Merges another map into this one, adding counters key-wise (keys
    /// present in only one map keep their counts). Used to combine the
    /// per-key attributions of independently replayed partition lanes.
    pub fn merge(&mut self, other: &StatsByKey<K>) {
        for (key, stats) in other.iter() {
            let index = match self.entries.binary_search_by(|(k, _)| k.cmp(key)) {
                Ok(index) => index,
                Err(index) => {
                    self.entries
                        .insert(index, (key.clone(), KeyStats::default()));
                    index
                }
            };
            let entry = &mut self.entries[index].1;
            entry.accesses += stats.accesses;
            entry.misses += stats.misses;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::TaskId;

    #[test]
    fn record_classifies_by_kind() {
        let mut s = CacheStats::new();
        s.record(AccessKind::Load, false, true, false);
        s.record(AccessKind::Load, true, false, false);
        s.record(AccessKind::Store, false, false, true);
        s.record(AccessKind::InstrFetch, true, false, false);
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.cold_misses, 1);
        assert_eq!(s.non_cold_misses(), 1);
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.load_accesses, 2);
        assert_eq!(s.load_misses, 1);
        assert_eq!(s.store_misses, 1);
        assert_eq!(s.instr_misses, 0);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CacheStats::new();
        a.record(AccessKind::Load, false, true, false);
        let mut b = CacheStats::new();
        b.record(AccessKind::Store, true, false, false);
        a.merge(&b);
        assert_eq!(a.accesses, 2);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 1);
    }

    #[test]
    fn stats_by_key_merges_key_wise() {
        let mut a: StatsByKey<TaskId> = StatsByKey::new();
        a.record(TaskId::new(0), false);
        a.record(TaskId::new(2), true);
        let mut b: StatsByKey<TaskId> = StatsByKey::new();
        b.record(TaskId::new(0), true);
        b.record(TaskId::new(1), false);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(&TaskId::new(0)).accesses, 2);
        assert_eq!(a.get(&TaskId::new(0)).misses, 1);
        assert_eq!(a.get(&TaskId::new(1)).misses, 1);
        assert_eq!(a.get(&TaskId::new(2)).accesses, 1);
        // Key order stays sorted after merging unseen keys.
        let keys: Vec<_> = a.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![TaskId::new(0), TaskId::new(1), TaskId::new(2)]);
    }

    #[test]
    fn stats_by_key_accumulates() {
        let mut s: StatsByKey<TaskId> = StatsByKey::new();
        s.record(TaskId::new(0), false);
        s.record(TaskId::new(0), true);
        s.record(TaskId::new(1), false);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&TaskId::new(0)).accesses, 2);
        assert_eq!(s.get(&TaskId::new(0)).misses, 1);
        assert_eq!(s.get(&TaskId::new(0)).hits(), 1);
        assert_eq!(s.get(&TaskId::new(2)).accesses, 0);
        assert_eq!(s.total_misses(), 2);
        assert_eq!(s.total_accesses(), 3);
        assert!((s.get(&TaskId::new(1)).miss_rate() - 1.0).abs() < 1e-12);
    }
}
