//! The object-safe [`CacheModel`] trait and the conventional shared-cache
//! baseline.
//!
//! # The unified cache layer
//!
//! The paper compares one application over four interchangeable L2
//! organisations — conventional shared, set-partitioned, way-partitioned
//! (column caching) and the profiling organisation that measures the
//! miss-vs-size curves. `CacheModel` is the single interface all four
//! implement; it is **object safe**, so the multiprocessor platform holds a
//! `Box<dyn CacheModel>` and an organisation can be chosen at run time (for
//! example from an [`OrganizationSpec`](crate::OrganizationSpec)) rather
//! than monomorphised into a separate simulator per organisation. One
//! timing path — L1 → bus arbitration → L2 → DRAM — therefore serves every
//! experiment, and independent runs can be farmed out across threads
//! (`CacheModel: Send`).
//!
//! Beyond per-access behaviour the trait standardises *observation*:
//! aggregate statistics, per-task / per-region / per-partition attribution,
//! a uniform [`CacheSnapshot`] for golden comparisons, and `reset`. The
//! [`as_any`](CacheModel::as_any) / [`into_any`](CacheModel::into_any)
//! escape hatch recovers organisation-specific results (such as the miss
//! profiles accumulated by the profiling cache) after a run completes.

use std::any::Any;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use compmem_trace::{Access, RegionId, RegionTable, TaskId};

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::CacheConfig;
use crate::error::CacheError;
use crate::geometry::CacheGeometry;
use crate::partition::PartitionKey;
use crate::schedule::FlushStats;
use crate::spec::OrganizationSpec;
use crate::stats::{CacheStats, KeyStats, StatsByKey};

/// A uniform, organisation-independent view of a cache's counters.
///
/// Snapshots are plain data (no references into the model), so they can be
/// compared across organisations, across runs and across threads; the
/// golden-parity tests assert byte-identical snapshots between the
/// `Box<dyn CacheModel>` path and direct construction of each concrete
/// organisation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Name of the organisation that produced the snapshot.
    pub organization: String,
    /// Aggregate statistics.
    pub aggregate: CacheStats,
    /// Per-task statistics.
    pub by_task: BTreeMap<TaskId, KeyStats>,
    /// Per-region statistics.
    pub by_region: BTreeMap<RegionId, KeyStats>,
    /// Per-partition-key statistics (empty for organisations that do not
    /// attribute accesses to partitions, e.g. the shared baseline).
    pub by_partition: BTreeMap<PartitionKey, KeyStats>,
}

/// An interchangeable L2 cache organisation.
///
/// Implementations: [`SharedCache`] (the paper's baseline),
/// [`SetPartitionedCache`](crate::SetPartitionedCache) (the paper's
/// proposal), [`WayPartitionedCache`](crate::WayPartitionedCache) (the
/// column-caching related work) and
/// [`ProfilingCache`](crate::ProfilingCache) (the shared baseline plus
/// shadow caches measuring miss-vs-size profiles).
///
/// The trait is object safe and `Send`; the platform's memory hierarchy
/// stores a `Box<dyn CacheModel>` and never needs to know which
/// organisation it is driving.
pub trait CacheModel: Send + Any + std::fmt::Debug {
    /// Short name of the organisation (`"shared"`, `"set-partitioned"`,
    /// `"way-partitioned"`, `"profiling"`).
    fn organization(&self) -> &'static str;

    /// Performs one access and returns its outcome.
    fn access(&mut self, access: &Access) -> AccessOutcome;

    /// Performs a whole batch of accesses, appending one outcome per access
    /// to `outcomes` (which is cleared first).
    ///
    /// The default forwards to [`access`](CacheModel::access) in order, so
    /// every organisation behaves exactly as if the batch had been issued
    /// access by access — the point of the method is that the platform's
    /// burst path ([`access_burst`]) pays **one** virtual dispatch per run
    /// of accesses instead of one per access.
    ///
    /// [`access_burst`]: ../compmem_platform/struct.MemorySystem.html#method.access_burst
    fn access_batch(&mut self, accesses: &[Access], outcomes: &mut Vec<AccessOutcome>) {
        outcomes.clear();
        outcomes.reserve(accesses.len());
        for access in accesses {
            outcomes.push(self.access(access));
        }
    }

    /// Geometry of the underlying cache.
    fn geometry(&self) -> CacheGeometry;

    /// Aggregate statistics.
    fn stats(&self) -> &CacheStats;

    /// Per-task statistics.
    fn stats_by_task(&self) -> &StatsByKey<TaskId>;

    /// Per-region statistics.
    fn stats_by_region(&self) -> &StatsByKey<RegionId>;

    /// Per-partition-key statistics, for organisations that attribute
    /// accesses to partitions (the default is `None`).
    fn stats_by_partition(&self) -> Option<&StatsByKey<PartitionKey>> {
        None
    }

    /// Invalidates the cache contents, returning the number of dirty lines.
    fn flush(&mut self) -> u64;

    /// Applies a new organisation to the **live** cache — the repartition
    /// event of a [`PartitionSchedule`](crate::PartitionSchedule).
    ///
    /// Reconfiguration is like-for-like: a set-partitioned cache takes a
    /// new `PartitionMap`, a way-partitioned cache a new `WayAllocation`,
    /// and the shared baseline only its own (no-op) spec. Lines whose
    /// set/way ownership changes are invalidated; the returned
    /// [`FlushStats`] counts them (and the dirty ones among them, which
    /// the platform charges as bus/DRAM write-back traffic). Statistics
    /// are never reset — the run's counters keep accumulating across the
    /// switch.
    ///
    /// # Errors
    ///
    /// The default returns [`CacheError::ReconfigureUnsupported`]:
    /// organisations opt in by overriding.
    fn reconfigure(
        &mut self,
        spec: &OrganizationSpec,
        regions: &RegionTable,
    ) -> Result<FlushStats, CacheError> {
        let _ = regions;
        Err(CacheError::ReconfigureUnsupported {
            from: self.organization(),
            to: spec.label(),
        })
    }

    /// Clears statistics without touching contents.
    fn reset_stats(&mut self);

    /// Captures an organisation-independent copy of every counter.
    fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            organization: self.organization().to_string(),
            aggregate: *self.stats(),
            by_task: self.stats_by_task().iter().map(|(k, v)| (*k, *v)).collect(),
            by_region: self
                .stats_by_region()
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
            by_partition: self
                .stats_by_partition()
                .map(|s| s.iter().map(|(k, v)| (*k, *v)).collect())
                .unwrap_or_default(),
        }
    }

    /// Borrow as `Any`, to inspect organisation-specific state.
    fn as_any(&self) -> &dyn Any;

    /// Convert into `Any`, to recover organisation-specific results (e.g.
    /// the profiling cache's measured [`MissProfiles`](crate::MissProfiles))
    /// after a run.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The baseline of the paper: a conventional shared cache in which every
/// task indexes every set, so tasks evict each other unpredictably.
#[derive(Debug, Clone)]
pub struct SharedCache {
    inner: SetAssocCache,
}

impl SharedCache {
    /// Creates a shared cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        SharedCache {
            inner: SetAssocCache::new(config),
        }
    }

    /// Returns the underlying set-associative cache.
    pub fn inner(&self) -> &SetAssocCache {
        &self.inner
    }
}

impl CacheModel for SharedCache {
    fn organization(&self) -> &'static str {
        "shared"
    }

    fn access(&mut self, access: &Access) -> AccessOutcome {
        self.inner.access(access)
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn stats_by_task(&self) -> &StatsByKey<TaskId> {
        self.inner.stats_by_task()
    }

    fn stats_by_region(&self) -> &StatsByKey<RegionId> {
        self.inner.stats_by_region()
    }

    fn flush(&mut self) -> u64 {
        self.inner.flush()
    }

    fn reconfigure(
        &mut self,
        spec: &OrganizationSpec,
        _regions: &RegionTable,
    ) -> Result<FlushStats, CacheError> {
        // A shared cache has no partition state: the only organisation it
        // can "switch" to is itself, and doing so touches nothing.
        match spec {
            OrganizationSpec::Shared => Ok(FlushStats::default()),
            other => Err(CacheError::ReconfigureUnsupported {
                from: self.organization(),
                to: other.label(),
            }),
        }
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::Addr;

    #[test]
    fn tasks_interfere_in_a_shared_cache() {
        // Two tasks alternately touching working sets that each fit in the
        // cache but together do not: every access misses after warmup.
        let mut cache = SharedCache::new(CacheConfig::new(4, 1).unwrap());
        let lines_per_ws = 4;
        let mut accesses = Vec::new();
        for round in 0..8 {
            for i in 0..lines_per_ws {
                // Task 0 at base 0, task 1 at base 16 KiB; both map onto the
                // same 4 sets of the tiny cache.
                for (task, base) in [(0u32, 0u64), (1, 16 * 1024)] {
                    accesses.push(Access::load(
                        Addr::new(base + i * 64),
                        4,
                        TaskId::new(task),
                        RegionId::new(task),
                    ));
                }
            }
            let _ = round;
        }
        for a in &accesses {
            cache.access(a);
        }
        let stats = cache.stats();
        // With both tasks thrashing the same sets, far more than the cold
        // misses occur.
        assert_eq!(stats.cold_misses, 8);
        assert!(
            stats.misses > stats.cold_misses * 4,
            "expected heavy inter-task conflict, got {stats:?}"
        );
        assert_eq!(
            cache.stats_by_task().get(&TaskId::new(0)).accesses,
            cache.stats_by_task().get(&TaskId::new(1)).accesses
        );
    }

    #[test]
    fn trait_object_usable() {
        let mut cache: Box<dyn CacheModel> =
            Box::new(SharedCache::new(CacheConfig::new(4, 2).unwrap()));
        let a = Access::load(Addr::new(0), 4, TaskId::new(0), RegionId::new(0));
        assert!(cache.access(&a).is_miss());
        assert!(cache.access(&a).hit);
        assert_eq!(cache.geometry().sets(), 4);
        assert_eq!(cache.organization(), "shared");
        assert!(cache.stats_by_partition().is_none());
        cache.reset_stats();
        assert_eq!(cache.stats().accesses, 0);
        assert_eq!(cache.flush(), 0);
    }

    #[test]
    fn snapshot_captures_all_counters() {
        let mut cache = SharedCache::new(CacheConfig::new(4, 2).unwrap());
        let a = Access::load(Addr::new(0), 4, TaskId::new(3), RegionId::new(7));
        cache.access(&a);
        cache.access(&a);
        let snap = cache.snapshot();
        assert_eq!(snap.organization, "shared");
        assert_eq!(snap.aggregate.accesses, 2);
        assert_eq!(snap.aggregate.misses, 1);
        assert_eq!(snap.by_task.get(&TaskId::new(3)).unwrap().accesses, 2);
        assert_eq!(snap.by_region.get(&RegionId::new(7)).unwrap().misses, 1);
        assert!(snap.by_partition.is_empty());
    }

    #[test]
    fn downcast_recovers_the_concrete_organisation() {
        let cache: Box<dyn CacheModel> =
            Box::new(SharedCache::new(CacheConfig::new(4, 2).unwrap()));
        assert!(cache.as_any().downcast_ref::<SharedCache>().is_some());
        let concrete = cache
            .into_any()
            .downcast::<SharedCache>()
            .expect("the box holds a SharedCache");
        assert_eq!(concrete.inner().geometry().sets(), 4);
    }
}
