//! Set-partitioned cache: the paper's proposal.
//!
//! Every "memory-active entity" — a task, a FIFO, a frame buffer or one of
//! the shared static sections — is a [`PartitionKey`]. The operating system
//! assigns each key an exclusive group of cache sets ([`Partition`]) and
//! loads the resulting [`PartitionMap`] into the cache controller. On every
//! access the controller finds the region of the address (the interval table
//! of `compmem-trace`), derives the key, and re-computes the set index
//! *inside* the key's partition. Tasks therefore can never evict each
//! other's lines, which is exactly the compositionality mechanism of §3.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use compmem_trace::{Access, BufferId, RegionId, RegionKind, RegionTable, TaskId};

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::CacheConfig;
use crate::error::CacheError;
use crate::geometry::CacheGeometry;
use crate::model::CacheModel;
use crate::schedule::FlushStats;
use crate::spec::OrganizationSpec;
use crate::stats::{CacheStats, KeyStats, StatsByKey};

/// The entity a cache partition is allocated to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PartitionKey {
    /// All private regions (code, data, bss, heap, stack) of one task.
    Task(TaskId),
    /// One inter-task communication buffer (FIFO or frame buffer).
    Buffer(BufferId),
    /// Application-wide initialised data shared by all tasks.
    AppData,
    /// Application-wide zero-initialised data shared by all tasks.
    AppBss,
    /// Run-time-system initialised data.
    RtData,
    /// Run-time-system zero-initialised data.
    RtBss,
}

impl PartitionKey {
    /// Derives the partition key an address of the given region kind is
    /// cached under.
    pub fn from_region_kind(kind: RegionKind) -> Self {
        match kind {
            RegionKind::TaskCode { task }
            | RegionKind::TaskData { task }
            | RegionKind::TaskBss { task }
            | RegionKind::TaskHeap { task }
            | RegionKind::TaskStack { task } => PartitionKey::Task(task),
            RegionKind::Fifo { buffer } | RegionKind::FrameBuffer { buffer } => {
                PartitionKey::Buffer(buffer)
            }
            RegionKind::AppData => PartitionKey::AppData,
            RegionKind::AppBss => PartitionKey::AppBss,
            RegionKind::RtData => PartitionKey::RtData,
            RegionKind::RtBss => PartitionKey::RtBss,
        }
    }

    /// The distinct partition keys of a region table, in region order.
    ///
    /// This is the canonical entity list of an application (or of a
    /// recorded trace, whose embedded table this is typically called on):
    /// the experiment driver, the CLI sweeps and the equal-split
    /// organisations all partition over exactly these keys.
    pub fn distinct_keys(table: &RegionTable) -> Vec<PartitionKey> {
        let mut keys = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for region in table.iter() {
            let key = PartitionKey::from_region_kind(region.kind);
            if seen.insert(key) {
                keys.push(key);
            }
        }
        keys
    }
}

impl fmt::Display for PartitionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionKey::Task(t) => write!(f, "task {t}"),
            PartitionKey::Buffer(b) => write!(f, "buffer {b}"),
            PartitionKey::AppData => write!(f, "app.data"),
            PartitionKey::AppBss => write!(f, "app.bss"),
            PartitionKey::RtData => write!(f, "rt.data"),
            PartitionKey::RtBss => write!(f, "rt.bss"),
        }
    }
}

/// An exclusive group of consecutive cache sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    /// First set of the group.
    pub base_set: u32,
    /// Number of sets in the group (a power of two).
    pub sets: u32,
}

impl Partition {
    /// The set an address line maps to inside this partition.
    pub fn index_of(&self, line: compmem_trace::LineAddr) -> u32 {
        self.base_set + (line.value() % u64::from(self.sets)) as u32
    }

    /// One-past-the-last set of the group.
    pub fn end_set(&self) -> u32 {
        self.base_set + self.sets
    }

    /// Returns `true` if the two partitions share any set.
    pub fn overlaps(&self, other: &Partition) -> bool {
        self.base_set < other.end_set() && other.base_set < self.end_set()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sets [{}, {})", self.base_set, self.end_set())
    }
}

/// The OS-managed table assigning an exclusive partition to every key.
///
/// ```
/// use compmem_cache::{CacheGeometry, PartitionKey, PartitionMap};
/// use compmem_trace::TaskId;
/// # fn main() -> Result<(), compmem_cache::CacheError> {
/// let geometry = CacheGeometry::new(128, 4)?;
/// let mut map = PartitionMap::new(geometry);
/// map.assign(PartitionKey::Task(TaskId::new(0)), 0, 32)?;
/// map.assign(PartitionKey::Task(TaskId::new(1)), 32, 64)?;
/// assert_eq!(map.assigned_sets(), 96);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    geometry: CacheGeometry,
    assignments: BTreeMap<PartitionKey, Partition>,
}

impl PartitionMap {
    /// Creates an empty map for a cache of the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        PartitionMap {
            geometry,
            assignments: BTreeMap::new(),
        }
    }

    /// Geometry the map was built for.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Assigns `sets` consecutive sets starting at `base_set` to `key`.
    ///
    /// # Errors
    ///
    /// * [`CacheError::PartitionNotPowerOfTwo`] if `sets` is not a non-zero
    ///   power of two,
    /// * [`CacheError::PartitionOutOfRange`] if the range exceeds the cache,
    /// * [`CacheError::PartitionOverlap`] if the range overlaps an existing
    ///   partition of a *different* key (re-assigning the same key replaces
    ///   its partition).
    pub fn assign(
        &mut self,
        key: PartitionKey,
        base_set: u32,
        sets: u32,
    ) -> Result<(), CacheError> {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(CacheError::PartitionNotPowerOfTwo { sets });
        }
        let partition = Partition { base_set, sets };
        if partition.end_set() > self.geometry.sets() {
            return Err(CacheError::PartitionOutOfRange {
                base_set,
                sets,
                cache_sets: self.geometry.sets(),
            });
        }
        for (other_key, other) in &self.assignments {
            if *other_key != key && partition.overlaps(other) {
                return Err(CacheError::PartitionOverlap { base_set, sets });
            }
        }
        self.assignments.insert(key, partition);
        Ok(())
    }

    /// Packs the given `(key, sets)` requests back to back starting at set 0.
    ///
    /// This is how the experiment driver turns an optimiser result (sizes
    /// only) into concrete set ranges.
    ///
    /// # Errors
    ///
    /// Same as [`assign`](Self::assign); in addition the total must fit in
    /// the cache.
    pub fn pack(
        geometry: CacheGeometry,
        sizes: &[(PartitionKey, u32)],
    ) -> Result<Self, CacheError> {
        let mut map = PartitionMap::new(geometry);
        let mut base = 0u32;
        for &(key, sets) in sizes {
            map.assign(key, base, sets)?;
            base += sets;
        }
        Ok(map)
    }

    /// Packs the given `(key, sets)` requests while disturbing `previous`
    /// as little as possible: every key whose requested size equals its
    /// partition in `previous` **keeps that exact partition** (so a later
    /// repartition will not flush it), and only re-sized or new keys are
    /// placed into the remaining gaps (largest first). When the gaps
    /// fragment too much to fit every pending key, the whole request
    /// falls back to a plain [`pack`](Self::pack) — correct, just
    /// flush-heavier.
    ///
    /// This is the layout policy of
    /// [`PhasePlan::to_schedule`](../compmem/experiment/struct.PhasePlan.html#method.to_schedule):
    /// without it, resizing one partition shifts the base of every
    /// partition packed after it and a switch flushes nearly the whole
    /// cache.
    ///
    /// # Errors
    ///
    /// As for [`pack`](Self::pack).
    pub fn pack_stable(
        geometry: CacheGeometry,
        sizes: &[(PartitionKey, u32)],
        previous: &PartitionMap,
    ) -> Result<Self, CacheError> {
        let mut map = PartitionMap::new(geometry);
        let mut pending: Vec<(PartitionKey, u32)> = Vec::new();
        for &(key, sets) in sizes {
            match previous.partition_for(key) {
                Some(p) if p.sets == sets => map.assign(key, p.base_set, sets)?,
                _ => pending.push((key, sets)),
            }
        }
        // Largest first limits fragmentation; the sort is stable, so
        // equal sizes keep the caller's (deterministic) order.
        pending.sort_by_key(|&(_, sets)| std::cmp::Reverse(sets));
        for &(key, sets) in &pending {
            match map.find_gap(sets) {
                Some(base) => map.assign(key, base, sets)?,
                None => return Self::pack(geometry, sizes),
            }
        }
        Ok(map)
    }

    /// First free range of at least `sets` consecutive sets, scanning
    /// from set 0.
    fn find_gap(&self, sets: u32) -> Option<u32> {
        let mut occupied: Vec<Partition> = self.assignments.values().copied().collect();
        occupied.sort_by_key(|p| p.base_set);
        let mut cursor = 0u32;
        for p in occupied {
            if p.base_set >= cursor && p.base_set - cursor >= sets {
                return Some(cursor);
            }
            cursor = cursor.max(p.end_set());
        }
        (self.geometry.sets() >= cursor && self.geometry.sets() - cursor >= sets).then_some(cursor)
    }

    /// Packs an equal split over `keys`: every key receives the largest
    /// power-of-two set count that still lets all keys fit in the cache
    /// (the set-indexed analogue of [`WayAllocation::equal_split`]).
    ///
    /// [`WayAllocation::equal_split`]: crate::WayAllocation::equal_split
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] if `keys` is empty (nothing to cover) or the
    /// split is invalid for the geometry.
    pub fn equal_split(geometry: CacheGeometry, keys: &[PartitionKey]) -> Result<Self, CacheError> {
        if keys.is_empty() {
            return Err(CacheError::NoPartitionKeys);
        }
        let per = (geometry.sets() / keys.len() as u32).max(1);
        let per = 1 << (u32::BITS - 1 - per.leading_zeros()); // previous power of two
        let sizes: Vec<(PartitionKey, u32)> = keys.iter().map(|&k| (k, per)).collect();
        Self::pack(geometry, &sizes)
    }

    /// Returns the partition assigned to `key`, if any.
    pub fn partition_for(&self, key: PartitionKey) -> Option<Partition> {
        self.assignments.get(&key).copied()
    }

    /// Number of sets whose ownership would change when reconfiguring
    /// from this map to `next`: sets that move to a different key, join a
    /// key, or leave all keys. Every line resident in such a set is
    /// invalidated by the switch, so `moved_sets × ways` bounds the flush
    /// cost — the estimate a hysteresis controller weighs predicted miss
    /// savings against before committing to a repartition.
    pub fn moved_sets(&self, next: &PartitionMap) -> u32 {
        let owner = |map: &PartitionMap, set: u32| {
            map.assignments
                .iter()
                .find(|(_, p)| p.base_set <= set && set < p.end_set())
                .map(|(key, _)| *key)
        };
        (0..self.geometry.sets())
            .filter(|&set| owner(self, set) != owner(next, set))
            .count() as u32
    }

    /// Iterates over `(key, partition)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&PartitionKey, &Partition)> {
        self.assignments.iter()
    }

    /// Number of keys with a partition.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Returns `true` if no partition has been assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Total number of sets assigned over all keys.
    pub fn assigned_sets(&self) -> u32 {
        self.assignments.values().map(|p| p.sets).sum()
    }

    /// Checks that every region of `table` maps to a key with a partition.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnassignedRegion`] naming the first uncovered
    /// region.
    pub fn validate_covers(&self, table: &RegionTable) -> Result<(), CacheError> {
        for region in table.iter() {
            let key = PartitionKey::from_region_kind(region.kind);
            if !self.assignments.contains_key(&key) {
                return Err(CacheError::UnassignedRegion {
                    region: region.id.index(),
                });
            }
        }
        Ok(())
    }
}

/// The set-partitioned shared cache of the paper.
///
/// Construction takes the application's [`RegionTable`] and the OS
/// [`PartitionMap`]; every region must be covered. Accesses are indexed
/// inside the partition of their region's key, so no entity can evict
/// another entity's lines.
#[derive(Debug, Clone)]
pub struct SetPartitionedCache {
    inner: SetAssocCache,
    /// The OS map currently loaded into the controller.
    map: PartitionMap,
    /// Dense map: region index -> (partition, key).
    region_partitions: Vec<(Partition, PartitionKey)>,
    by_partition: StatsByKey<PartitionKey>,
}

impl SetPartitionedCache {
    /// Creates a partitioned cache.
    ///
    /// # Errors
    ///
    /// Returns an error if the partition map does not cover every region of
    /// the table (see [`PartitionMap::validate_covers`]).
    pub fn new(
        config: CacheConfig,
        regions: &RegionTable,
        map: &PartitionMap,
    ) -> Result<Self, CacheError> {
        map.validate_covers(regions)?;
        Ok(SetPartitionedCache {
            inner: SetAssocCache::new(config),
            region_partitions: Self::region_partitions(regions, map),
            map: map.clone(),
            by_partition: StatsByKey::new(),
        })
    }

    /// The dense region-index -> (partition, key) table of a validated map.
    fn region_partitions(
        regions: &RegionTable,
        map: &PartitionMap,
    ) -> Vec<(Partition, PartitionKey)> {
        regions
            .iter()
            .map(|r| {
                let key = PartitionKey::from_region_kind(r.kind);
                let partition = map
                    .partition_for(key)
                    .expect("validated: every region key has a partition");
                (partition, key)
            })
            .collect()
    }

    /// The OS map currently loaded into the controller.
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Loads a new OS map into the live cache — the repartition event of
    /// a schedule.
    ///
    /// A key keeps its contents only if its partition is *identical*
    /// (same base set, same size) under both maps: moving or resizing a
    /// partition changes the in-partition index mapping, so its sets are
    /// invalidated wholesale, as are the sets of keys that disappeared.
    /// Dirty invalidated lines are counted as write-backs in the returned
    /// [`FlushStats`]. Invalidated lines do **not** become cold again —
    /// their re-fetches are repartition-induced conflict misses.
    /// Statistics are preserved across the switch.
    ///
    /// # Errors
    ///
    /// Returns an error if the new map's geometry differs from the
    /// cache's or it does not cover every region of `regions`.
    pub fn repartition(
        &mut self,
        regions: &RegionTable,
        map: &PartitionMap,
    ) -> Result<FlushStats, CacheError> {
        if map.geometry() != self.inner.geometry() {
            return Err(CacheError::InvalidGeometry {
                parameter: "partition-map sets",
                value: u64::from(map.geometry().sets()),
            });
        }
        map.validate_covers(regions)?;
        let mut stats = FlushStats::default();
        for (key, old) in self.map.iter() {
            if map.partition_for(*key) == Some(*old) {
                continue; // unchanged partition: contents stay valid
            }
            for set in old.base_set..old.end_set() {
                let (invalidated, dirty) = self.inner.flush_set(set);
                stats.invalidated += invalidated;
                stats.written_back += dirty;
            }
        }
        self.region_partitions = Self::region_partitions(regions, map);
        self.map = map.clone();
        Ok(stats)
    }

    /// Per-partition-key statistics (tasks, buffers, shared sections).
    pub fn stats_by_partition(&self) -> &StatsByKey<PartitionKey> {
        &self.by_partition
    }

    /// Counters for one partition key.
    pub fn partition_stats(&self, key: PartitionKey) -> KeyStats {
        self.by_partition.get(&key)
    }

    /// The partition an access of region `region` would be cached in.
    ///
    /// # Panics
    ///
    /// Panics if `region` was not part of the region table given at
    /// construction.
    pub fn partition_of_region(&self, region: RegionId) -> Partition {
        self.region_partitions[region.index()].0
    }
}

impl CacheModel for SetPartitionedCache {
    fn organization(&self) -> &'static str {
        "set-partitioned"
    }

    fn access(&mut self, access: &Access) -> AccessOutcome {
        let (partition, key) = self.region_partitions[access.region.index()];
        let set = partition.index_of(access.addr.line());
        let outcome = self.inner.access_at(set, u64::MAX, access);
        self.by_partition.record(key, outcome.hit);
        outcome
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn stats_by_task(&self) -> &StatsByKey<TaskId> {
        self.inner.stats_by_task()
    }

    fn stats_by_region(&self) -> &StatsByKey<RegionId> {
        self.inner.stats_by_region()
    }

    fn stats_by_partition(&self) -> Option<&StatsByKey<PartitionKey>> {
        Some(&self.by_partition)
    }

    fn flush(&mut self) -> u64 {
        self.inner.flush()
    }

    fn reconfigure(
        &mut self,
        spec: &OrganizationSpec,
        regions: &RegionTable,
    ) -> Result<FlushStats, CacheError> {
        match spec {
            OrganizationSpec::SetPartitioned(map) => self.repartition(regions, map),
            other => Err(CacheError::ReconfigureUnsupported {
                from: self.organization(),
                to: other.label(),
            }),
        }
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.by_partition = StatsByKey::new();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::RegionKind;

    fn two_task_table() -> (RegionTable, RegionId, RegionId) {
        let mut table = RegionTable::new();
        let r0 = table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                64 * 1024,
            )
            .unwrap();
        let r1 = table
            .insert(
                "t1.data",
                RegionKind::TaskData {
                    task: TaskId::new(1),
                },
                64 * 1024,
            )
            .unwrap();
        (table, r0, r1)
    }

    fn map_for(geometry: CacheGeometry) -> PartitionMap {
        PartitionMap::pack(
            geometry,
            &[
                (PartitionKey::Task(TaskId::new(0)), 2),
                (PartitionKey::Task(TaskId::new(1)), 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn partition_map_rejects_bad_assignments() {
        let g = CacheGeometry::new(16, 2).unwrap();
        let mut map = PartitionMap::new(g);
        assert!(matches!(
            map.assign(PartitionKey::AppData, 0, 3),
            Err(CacheError::PartitionNotPowerOfTwo { .. })
        ));
        assert!(matches!(
            map.assign(PartitionKey::AppData, 12, 8),
            Err(CacheError::PartitionOutOfRange { .. })
        ));
        map.assign(PartitionKey::AppData, 0, 8).unwrap();
        assert!(matches!(
            map.assign(PartitionKey::AppBss, 4, 4),
            Err(CacheError::PartitionOverlap { .. })
        ));
        // Re-assigning the same key replaces it rather than overlapping.
        map.assign(PartitionKey::AppData, 0, 4).unwrap();
        assert_eq!(map.partition_for(PartitionKey::AppData).unwrap().sets, 4);
    }

    #[test]
    fn uncovered_region_is_rejected_at_construction() {
        let (table, _, _) = two_task_table();
        let g = CacheGeometry::new(16, 2).unwrap();
        let map = PartitionMap::pack(g, &[(PartitionKey::Task(TaskId::new(0)), 2)]).unwrap();
        let err = SetPartitionedCache::new(CacheConfig::new(16, 2).unwrap(), &table, &map);
        assert!(matches!(err, Err(CacheError::UnassignedRegion { .. })));
    }

    #[test]
    fn tasks_do_not_evict_each_other() {
        let (table, r0, r1) = two_task_table();
        let config = CacheConfig::new(16, 2).unwrap();
        let map = map_for(config.geometry());
        let mut cache = SetPartitionedCache::new(config, &table, &map).unwrap();

        let base0 = table.region(r0).base;
        let base1 = table.region(r1).base;
        // Task 0 touches 4 lines (fits in 2 sets * 2 ways), then task 1
        // sweeps a large working set; task 0 must still hit afterwards.
        let t0_lines: Vec<Access> = (0..4)
            .map(|i| Access::load(base0.offset(i * 64), 4, TaskId::new(0), r0))
            .collect();
        for a in &t0_lines {
            cache.access(a);
        }
        for i in 0..1024 {
            let a = Access::load(base1.offset(i * 64), 4, TaskId::new(1), r1);
            cache.access(&a);
        }
        for a in &t0_lines {
            assert!(cache.access(a).hit, "task 1 evicted task 0's line");
        }
        assert_eq!(
            cache
                .partition_stats(PartitionKey::Task(TaskId::new(0)))
                .misses,
            4,
            "only the four cold misses"
        );
    }

    #[test]
    fn partition_indexing_stays_in_range() {
        let (table, r0, _) = two_task_table();
        let config = CacheConfig::new(16, 2).unwrap();
        let map = map_for(config.geometry());
        let cache = SetPartitionedCache::new(config, &table, &map).unwrap();
        let p = cache.partition_of_region(r0);
        for i in 0..100 {
            let set = p.index_of(compmem_trace::LineAddr::new(i * 37));
            assert!(set >= p.base_set && set < p.end_set());
        }
    }

    #[test]
    fn key_derivation_groups_task_sections() {
        let t = TaskId::new(4);
        for kind in [
            RegionKind::TaskCode { task: t },
            RegionKind::TaskData { task: t },
            RegionKind::TaskBss { task: t },
            RegionKind::TaskHeap { task: t },
            RegionKind::TaskStack { task: t },
        ] {
            assert_eq!(PartitionKey::from_region_kind(kind), PartitionKey::Task(t));
        }
        assert_eq!(
            PartitionKey::from_region_kind(RegionKind::Fifo {
                buffer: BufferId::new(2)
            }),
            PartitionKey::Buffer(BufferId::new(2))
        );
        assert_eq!(
            PartitionKey::from_region_kind(RegionKind::RtBss),
            PartitionKey::RtBss
        );
    }

    #[test]
    fn pack_lays_out_back_to_back() {
        let g = CacheGeometry::new(64, 4).unwrap();
        let map = PartitionMap::pack(
            g,
            &[
                (PartitionKey::AppData, 4),
                (PartitionKey::AppBss, 8),
                (PartitionKey::RtData, 16),
            ],
        )
        .unwrap();
        assert_eq!(
            map.partition_for(PartitionKey::AppData).unwrap().base_set,
            0
        );
        assert_eq!(map.partition_for(PartitionKey::AppBss).unwrap().base_set, 4);
        assert_eq!(
            map.partition_for(PartitionKey::RtData).unwrap().base_set,
            12
        );
        assert_eq!(map.assigned_sets(), 28);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn pack_stable_keeps_unchanged_partitions_in_place() {
        let g = CacheGeometry::new(64, 4).unwrap();
        let t = |i| PartitionKey::Task(TaskId::new(i));
        let old = PartitionMap::pack(g, &[(t(0), 8), (t(1), 16), (t(2), 4), (t(3), 8)]).unwrap();
        // Resize only t1 (16 -> 8): everyone else keeps their exact
        // partition, and t1 lands in a free gap.
        let new = PartitionMap::pack_stable(g, &[(t(0), 8), (t(1), 8), (t(2), 4), (t(3), 8)], &old)
            .unwrap();
        for key in [t(0), t(2), t(3)] {
            assert_eq!(new.partition_for(key), old.partition_for(key), "{key}");
        }
        let p1 = new.partition_for(t(1)).unwrap();
        assert_eq!(p1.sets, 8);
        // No overlap with the kept partitions.
        for key in [t(0), t(2), t(3)] {
            assert!(!p1.overlaps(&new.partition_for(key).unwrap()));
        }
        // A dropped key frees its range; a new key can take a gap.
        let with_new =
            PartitionMap::pack_stable(g, &[(t(0), 8), (t(4), 16), (t(3), 8)], &new).unwrap();
        assert_eq!(with_new.partition_for(t(0)), old.partition_for(t(0)));
        assert_eq!(with_new.partition_for(t(3)), old.partition_for(t(3)));
        assert!(with_new.partition_for(t(1)).is_none());
        assert_eq!(with_new.partition_for(t(4)).unwrap().sets, 16);
        // Fragmented gaps that cannot hold a pending request fall back to
        // a full repack rather than failing: kept partitions at [0, 8)
        // and [32, 40) leave two 24-set gaps, neither of which holds the
        // resized 32-set request even though 48 sets are free in total.
        let mut fragmented = PartitionMap::new(g);
        fragmented.assign(t(0), 0, 8).unwrap();
        fragmented.assign(t(1), 32, 8).unwrap();
        fragmented.assign(t(2), 8, 16).unwrap();
        let repacked =
            PartitionMap::pack_stable(g, &[(t(0), 8), (t(1), 8), (t(2), 32)], &fragmented).unwrap();
        assert_eq!(
            repacked,
            PartitionMap::pack(g, &[(t(0), 8), (t(1), 8), (t(2), 32)]).unwrap()
        );
    }

    #[test]
    fn repartition_keeps_unchanged_partitions_and_flushes_moved_ones() {
        let (table, r0, r1) = two_task_table();
        let config = CacheConfig::new(16, 2).unwrap();
        let map = PartitionMap::pack(
            config.geometry(),
            &[
                (PartitionKey::Task(TaskId::new(0)), 2),
                (PartitionKey::Task(TaskId::new(1)), 4),
            ],
        )
        .unwrap();
        let mut cache = SetPartitionedCache::new(config, &table, &map).unwrap();
        let base0 = table.region(r0).base;
        let base1 = table.region(r1).base;
        // Task 0 fills its 2x2 partition (one line dirty); task 1 touches
        // two lines of its own.
        let t0_lines: Vec<Access> = (0..4)
            .map(|i| Access::load(base0.offset(i * 64), 4, TaskId::new(0), r0))
            .collect();
        for a in &t0_lines {
            cache.access(a);
        }
        cache.access(&Access::store(base0, 4, TaskId::new(0), r0));
        let t1_lines: Vec<Access> = (0..2)
            .map(|i| Access::load(base1.offset(i * 64), 4, TaskId::new(1), r1))
            .collect();
        for a in &t1_lines {
            cache.access(a);
        }

        // Task 0 keeps its partition; task 1's is resized: only task 1's
        // lines are invalidated (none dirty).
        let resized = PartitionMap::pack(
            config.geometry(),
            &[
                (PartitionKey::Task(TaskId::new(0)), 2),
                (PartitionKey::Task(TaskId::new(1)), 8),
            ],
        )
        .unwrap();
        let stats = cache.repartition(&table, &resized).unwrap();
        assert_eq!(stats.invalidated, 2);
        assert_eq!(stats.written_back, 0);
        for a in &t0_lines {
            assert!(cache.access(a).hit, "task 0's partition was untouched");
        }
        for a in &t1_lines {
            let out = cache.access(a);
            assert!(out.is_miss(), "task 1's lines were invalidated");
            assert!(!out.cold, "repartition misses are not cold misses");
        }
        assert_eq!(
            cache
                .map()
                .partition_for(PartitionKey::Task(TaskId::new(1)))
                .unwrap()
                .sets,
            8
        );

        // Moving task 0's (dirty) partition counts the write-back.
        let moved = PartitionMap::pack(
            config.geometry(),
            &[
                (PartitionKey::Task(TaskId::new(1)), 8),
                (PartitionKey::Task(TaskId::new(0)), 4),
            ],
        )
        .unwrap();
        let stats = cache.repartition(&table, &moved).unwrap();
        // Both partitions moved: task 0's four lines plus the two task-1
        // lines refilled after the first switch.
        assert_eq!(stats.invalidated, 6);
        assert_eq!(stats.written_back, 1, "only task 0's stored line was dirty");
        // Statistics survived both switches.
        assert!(cache.stats().accesses > 0);
        assert!(
            cache
                .partition_stats(PartitionKey::Task(TaskId::new(0)))
                .accesses
                > 0
        );
    }

    #[test]
    fn identical_repartition_flushes_nothing() {
        let (table, r0, _) = two_task_table();
        let config = CacheConfig::new(16, 2).unwrap();
        let map = map_for(config.geometry());
        let mut cache = SetPartitionedCache::new(config, &table, &map).unwrap();
        let base0 = table.region(r0).base;
        let a = Access::load(base0, 4, TaskId::new(0), r0);
        cache.access(&a);
        let stats = cache.repartition(&table, &map).unwrap();
        assert_eq!(stats, FlushStats::default());
        assert!(cache.access(&a).hit);
    }

    #[test]
    fn repartition_validates_geometry_and_coverage() {
        let (table, _, _) = two_task_table();
        let config = CacheConfig::new(16, 2).unwrap();
        let map = map_for(config.geometry());
        let mut cache = SetPartitionedCache::new(config, &table, &map).unwrap();
        let wrong_geometry = PartitionMap::pack(
            CacheGeometry::new(32, 2).unwrap(),
            &[
                (PartitionKey::Task(TaskId::new(0)), 2),
                (PartitionKey::Task(TaskId::new(1)), 2),
            ],
        )
        .unwrap();
        assert!(matches!(
            cache.repartition(&table, &wrong_geometry),
            Err(CacheError::InvalidGeometry { .. })
        ));
        let uncovered = PartitionMap::pack(
            config.geometry(),
            &[(PartitionKey::Task(TaskId::new(0)), 2)],
        )
        .unwrap();
        assert!(matches!(
            cache.repartition(&table, &uncovered),
            Err(CacheError::UnassignedRegion { .. })
        ));
        // Failed repartitions leave the loaded map untouched.
        assert_eq!(cache.map(), &map);
    }

    #[test]
    fn reconfigure_goes_through_the_trait_object() {
        let (table, _, _) = two_task_table();
        let config = CacheConfig::new(16, 2).unwrap();
        let map = map_for(config.geometry());
        let mut cache: Box<dyn CacheModel> =
            Box::new(SetPartitionedCache::new(config, &table, &map).unwrap());
        let stats = cache
            .reconfigure(&OrganizationSpec::SetPartitioned(map), &table)
            .unwrap();
        assert_eq!(stats, FlushStats::default());
        assert!(matches!(
            cache.reconfigure(&OrganizationSpec::Shared, &table),
            Err(CacheError::ReconfigureUnsupported {
                from: "set-partitioned",
                to: "shared"
            })
        ));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PartitionKey::Task(TaskId::new(2)).to_string(), "task T2");
        assert_eq!(
            Partition {
                base_set: 4,
                sets: 8
            }
            .to_string(),
            "sets [4, 12)"
        );
    }
}
