//! Set-partitioned cache: the paper's proposal.
//!
//! Every "memory-active entity" — a task, a FIFO, a frame buffer or one of
//! the shared static sections — is a [`PartitionKey`]. The operating system
//! assigns each key an exclusive group of cache sets ([`Partition`]) and
//! loads the resulting [`PartitionMap`] into the cache controller. On every
//! access the controller finds the region of the address (the interval table
//! of `compmem-trace`), derives the key, and re-computes the set index
//! *inside* the key's partition. Tasks therefore can never evict each
//! other's lines, which is exactly the compositionality mechanism of §3.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use compmem_trace::{Access, BufferId, RegionId, RegionKind, RegionTable, TaskId};

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::CacheConfig;
use crate::error::CacheError;
use crate::geometry::CacheGeometry;
use crate::model::CacheModel;
use crate::stats::{CacheStats, KeyStats, StatsByKey};

/// The entity a cache partition is allocated to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PartitionKey {
    /// All private regions (code, data, bss, heap, stack) of one task.
    Task(TaskId),
    /// One inter-task communication buffer (FIFO or frame buffer).
    Buffer(BufferId),
    /// Application-wide initialised data shared by all tasks.
    AppData,
    /// Application-wide zero-initialised data shared by all tasks.
    AppBss,
    /// Run-time-system initialised data.
    RtData,
    /// Run-time-system zero-initialised data.
    RtBss,
}

impl PartitionKey {
    /// Derives the partition key an address of the given region kind is
    /// cached under.
    pub fn from_region_kind(kind: RegionKind) -> Self {
        match kind {
            RegionKind::TaskCode { task }
            | RegionKind::TaskData { task }
            | RegionKind::TaskBss { task }
            | RegionKind::TaskHeap { task }
            | RegionKind::TaskStack { task } => PartitionKey::Task(task),
            RegionKind::Fifo { buffer } | RegionKind::FrameBuffer { buffer } => {
                PartitionKey::Buffer(buffer)
            }
            RegionKind::AppData => PartitionKey::AppData,
            RegionKind::AppBss => PartitionKey::AppBss,
            RegionKind::RtData => PartitionKey::RtData,
            RegionKind::RtBss => PartitionKey::RtBss,
        }
    }

    /// The distinct partition keys of a region table, in region order.
    ///
    /// This is the canonical entity list of an application (or of a
    /// recorded trace, whose embedded table this is typically called on):
    /// the experiment driver, the CLI sweeps and the equal-split
    /// organisations all partition over exactly these keys.
    pub fn distinct_keys(table: &RegionTable) -> Vec<PartitionKey> {
        let mut keys = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for region in table.iter() {
            let key = PartitionKey::from_region_kind(region.kind);
            if seen.insert(key) {
                keys.push(key);
            }
        }
        keys
    }
}

impl fmt::Display for PartitionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionKey::Task(t) => write!(f, "task {t}"),
            PartitionKey::Buffer(b) => write!(f, "buffer {b}"),
            PartitionKey::AppData => write!(f, "app.data"),
            PartitionKey::AppBss => write!(f, "app.bss"),
            PartitionKey::RtData => write!(f, "rt.data"),
            PartitionKey::RtBss => write!(f, "rt.bss"),
        }
    }
}

/// An exclusive group of consecutive cache sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    /// First set of the group.
    pub base_set: u32,
    /// Number of sets in the group (a power of two).
    pub sets: u32,
}

impl Partition {
    /// The set an address line maps to inside this partition.
    pub fn index_of(&self, line: compmem_trace::LineAddr) -> u32 {
        self.base_set + (line.value() % u64::from(self.sets)) as u32
    }

    /// One-past-the-last set of the group.
    pub fn end_set(&self) -> u32 {
        self.base_set + self.sets
    }

    /// Returns `true` if the two partitions share any set.
    pub fn overlaps(&self, other: &Partition) -> bool {
        self.base_set < other.end_set() && other.base_set < self.end_set()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sets [{}, {})", self.base_set, self.end_set())
    }
}

/// The OS-managed table assigning an exclusive partition to every key.
///
/// ```
/// use compmem_cache::{CacheGeometry, PartitionKey, PartitionMap};
/// use compmem_trace::TaskId;
/// # fn main() -> Result<(), compmem_cache::CacheError> {
/// let geometry = CacheGeometry::new(128, 4)?;
/// let mut map = PartitionMap::new(geometry);
/// map.assign(PartitionKey::Task(TaskId::new(0)), 0, 32)?;
/// map.assign(PartitionKey::Task(TaskId::new(1)), 32, 64)?;
/// assert_eq!(map.assigned_sets(), 96);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    geometry: CacheGeometry,
    assignments: BTreeMap<PartitionKey, Partition>,
}

impl PartitionMap {
    /// Creates an empty map for a cache of the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        PartitionMap {
            geometry,
            assignments: BTreeMap::new(),
        }
    }

    /// Geometry the map was built for.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Assigns `sets` consecutive sets starting at `base_set` to `key`.
    ///
    /// # Errors
    ///
    /// * [`CacheError::PartitionNotPowerOfTwo`] if `sets` is not a non-zero
    ///   power of two,
    /// * [`CacheError::PartitionOutOfRange`] if the range exceeds the cache,
    /// * [`CacheError::PartitionOverlap`] if the range overlaps an existing
    ///   partition of a *different* key (re-assigning the same key replaces
    ///   its partition).
    pub fn assign(
        &mut self,
        key: PartitionKey,
        base_set: u32,
        sets: u32,
    ) -> Result<(), CacheError> {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(CacheError::PartitionNotPowerOfTwo { sets });
        }
        let partition = Partition { base_set, sets };
        if partition.end_set() > self.geometry.sets() {
            return Err(CacheError::PartitionOutOfRange {
                base_set,
                sets,
                cache_sets: self.geometry.sets(),
            });
        }
        for (other_key, other) in &self.assignments {
            if *other_key != key && partition.overlaps(other) {
                return Err(CacheError::PartitionOverlap { base_set, sets });
            }
        }
        self.assignments.insert(key, partition);
        Ok(())
    }

    /// Packs the given `(key, sets)` requests back to back starting at set 0.
    ///
    /// This is how the experiment driver turns an optimiser result (sizes
    /// only) into concrete set ranges.
    ///
    /// # Errors
    ///
    /// Same as [`assign`](Self::assign); in addition the total must fit in
    /// the cache.
    pub fn pack(
        geometry: CacheGeometry,
        sizes: &[(PartitionKey, u32)],
    ) -> Result<Self, CacheError> {
        let mut map = PartitionMap::new(geometry);
        let mut base = 0u32;
        for &(key, sets) in sizes {
            map.assign(key, base, sets)?;
            base += sets;
        }
        Ok(map)
    }

    /// Packs an equal split over `keys`: every key receives the largest
    /// power-of-two set count that still lets all keys fit in the cache
    /// (the set-indexed analogue of [`WayAllocation::equal_split`]).
    ///
    /// [`WayAllocation::equal_split`]: crate::WayAllocation::equal_split
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] if `keys` is empty (nothing to cover) or the
    /// split is invalid for the geometry.
    pub fn equal_split(geometry: CacheGeometry, keys: &[PartitionKey]) -> Result<Self, CacheError> {
        if keys.is_empty() {
            return Err(CacheError::NoPartitionKeys);
        }
        let per = (geometry.sets() / keys.len() as u32).max(1);
        let per = 1 << (u32::BITS - 1 - per.leading_zeros()); // previous power of two
        let sizes: Vec<(PartitionKey, u32)> = keys.iter().map(|&k| (k, per)).collect();
        Self::pack(geometry, &sizes)
    }

    /// Returns the partition assigned to `key`, if any.
    pub fn partition_for(&self, key: PartitionKey) -> Option<Partition> {
        self.assignments.get(&key).copied()
    }

    /// Iterates over `(key, partition)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&PartitionKey, &Partition)> {
        self.assignments.iter()
    }

    /// Number of keys with a partition.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Returns `true` if no partition has been assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Total number of sets assigned over all keys.
    pub fn assigned_sets(&self) -> u32 {
        self.assignments.values().map(|p| p.sets).sum()
    }

    /// Checks that every region of `table` maps to a key with a partition.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnassignedRegion`] naming the first uncovered
    /// region.
    pub fn validate_covers(&self, table: &RegionTable) -> Result<(), CacheError> {
        for region in table.iter() {
            let key = PartitionKey::from_region_kind(region.kind);
            if !self.assignments.contains_key(&key) {
                return Err(CacheError::UnassignedRegion {
                    region: region.id.index(),
                });
            }
        }
        Ok(())
    }
}

/// The set-partitioned shared cache of the paper.
///
/// Construction takes the application's [`RegionTable`] and the OS
/// [`PartitionMap`]; every region must be covered. Accesses are indexed
/// inside the partition of their region's key, so no entity can evict
/// another entity's lines.
#[derive(Debug, Clone)]
pub struct SetPartitionedCache {
    inner: SetAssocCache,
    /// Dense map: region index -> (partition, key).
    region_partitions: Vec<(Partition, PartitionKey)>,
    by_partition: StatsByKey<PartitionKey>,
}

impl SetPartitionedCache {
    /// Creates a partitioned cache.
    ///
    /// # Errors
    ///
    /// Returns an error if the partition map does not cover every region of
    /// the table (see [`PartitionMap::validate_covers`]).
    pub fn new(
        config: CacheConfig,
        regions: &RegionTable,
        map: &PartitionMap,
    ) -> Result<Self, CacheError> {
        map.validate_covers(regions)?;
        let region_partitions = regions
            .iter()
            .map(|r| {
                let key = PartitionKey::from_region_kind(r.kind);
                let partition = map
                    .partition_for(key)
                    .expect("validated above: every region key has a partition");
                (partition, key)
            })
            .collect();
        Ok(SetPartitionedCache {
            inner: SetAssocCache::new(config),
            region_partitions,
            by_partition: StatsByKey::new(),
        })
    }

    /// Per-partition-key statistics (tasks, buffers, shared sections).
    pub fn stats_by_partition(&self) -> &StatsByKey<PartitionKey> {
        &self.by_partition
    }

    /// Counters for one partition key.
    pub fn partition_stats(&self, key: PartitionKey) -> KeyStats {
        self.by_partition.get(&key)
    }

    /// The partition an access of region `region` would be cached in.
    ///
    /// # Panics
    ///
    /// Panics if `region` was not part of the region table given at
    /// construction.
    pub fn partition_of_region(&self, region: RegionId) -> Partition {
        self.region_partitions[region.index()].0
    }
}

impl CacheModel for SetPartitionedCache {
    fn organization(&self) -> &'static str {
        "set-partitioned"
    }

    fn access(&mut self, access: &Access) -> AccessOutcome {
        let (partition, key) = self.region_partitions[access.region.index()];
        let set = partition.index_of(access.addr.line());
        let outcome = self.inner.access_at(set, u64::MAX, access);
        self.by_partition.record(key, outcome.hit);
        outcome
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn stats_by_task(&self) -> &StatsByKey<TaskId> {
        self.inner.stats_by_task()
    }

    fn stats_by_region(&self) -> &StatsByKey<RegionId> {
        self.inner.stats_by_region()
    }

    fn stats_by_partition(&self) -> Option<&StatsByKey<PartitionKey>> {
        Some(&self.by_partition)
    }

    fn flush(&mut self) -> u64 {
        self.inner.flush()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.by_partition = StatsByKey::new();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::RegionKind;

    fn two_task_table() -> (RegionTable, RegionId, RegionId) {
        let mut table = RegionTable::new();
        let r0 = table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                64 * 1024,
            )
            .unwrap();
        let r1 = table
            .insert(
                "t1.data",
                RegionKind::TaskData {
                    task: TaskId::new(1),
                },
                64 * 1024,
            )
            .unwrap();
        (table, r0, r1)
    }

    fn map_for(geometry: CacheGeometry) -> PartitionMap {
        PartitionMap::pack(
            geometry,
            &[
                (PartitionKey::Task(TaskId::new(0)), 2),
                (PartitionKey::Task(TaskId::new(1)), 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn partition_map_rejects_bad_assignments() {
        let g = CacheGeometry::new(16, 2).unwrap();
        let mut map = PartitionMap::new(g);
        assert!(matches!(
            map.assign(PartitionKey::AppData, 0, 3),
            Err(CacheError::PartitionNotPowerOfTwo { .. })
        ));
        assert!(matches!(
            map.assign(PartitionKey::AppData, 12, 8),
            Err(CacheError::PartitionOutOfRange { .. })
        ));
        map.assign(PartitionKey::AppData, 0, 8).unwrap();
        assert!(matches!(
            map.assign(PartitionKey::AppBss, 4, 4),
            Err(CacheError::PartitionOverlap { .. })
        ));
        // Re-assigning the same key replaces it rather than overlapping.
        map.assign(PartitionKey::AppData, 0, 4).unwrap();
        assert_eq!(map.partition_for(PartitionKey::AppData).unwrap().sets, 4);
    }

    #[test]
    fn uncovered_region_is_rejected_at_construction() {
        let (table, _, _) = two_task_table();
        let g = CacheGeometry::new(16, 2).unwrap();
        let map = PartitionMap::pack(g, &[(PartitionKey::Task(TaskId::new(0)), 2)]).unwrap();
        let err = SetPartitionedCache::new(CacheConfig::new(16, 2).unwrap(), &table, &map);
        assert!(matches!(err, Err(CacheError::UnassignedRegion { .. })));
    }

    #[test]
    fn tasks_do_not_evict_each_other() {
        let (table, r0, r1) = two_task_table();
        let config = CacheConfig::new(16, 2).unwrap();
        let map = map_for(config.geometry());
        let mut cache = SetPartitionedCache::new(config, &table, &map).unwrap();

        let base0 = table.region(r0).base;
        let base1 = table.region(r1).base;
        // Task 0 touches 4 lines (fits in 2 sets * 2 ways), then task 1
        // sweeps a large working set; task 0 must still hit afterwards.
        let t0_lines: Vec<Access> = (0..4)
            .map(|i| Access::load(base0.offset(i * 64), 4, TaskId::new(0), r0))
            .collect();
        for a in &t0_lines {
            cache.access(a);
        }
        for i in 0..1024 {
            let a = Access::load(base1.offset(i * 64), 4, TaskId::new(1), r1);
            cache.access(&a);
        }
        for a in &t0_lines {
            assert!(cache.access(a).hit, "task 1 evicted task 0's line");
        }
        assert_eq!(
            cache
                .partition_stats(PartitionKey::Task(TaskId::new(0)))
                .misses,
            4,
            "only the four cold misses"
        );
    }

    #[test]
    fn partition_indexing_stays_in_range() {
        let (table, r0, _) = two_task_table();
        let config = CacheConfig::new(16, 2).unwrap();
        let map = map_for(config.geometry());
        let cache = SetPartitionedCache::new(config, &table, &map).unwrap();
        let p = cache.partition_of_region(r0);
        for i in 0..100 {
            let set = p.index_of(compmem_trace::LineAddr::new(i * 37));
            assert!(set >= p.base_set && set < p.end_set());
        }
    }

    #[test]
    fn key_derivation_groups_task_sections() {
        let t = TaskId::new(4);
        for kind in [
            RegionKind::TaskCode { task: t },
            RegionKind::TaskData { task: t },
            RegionKind::TaskBss { task: t },
            RegionKind::TaskHeap { task: t },
            RegionKind::TaskStack { task: t },
        ] {
            assert_eq!(PartitionKey::from_region_kind(kind), PartitionKey::Task(t));
        }
        assert_eq!(
            PartitionKey::from_region_kind(RegionKind::Fifo {
                buffer: BufferId::new(2)
            }),
            PartitionKey::Buffer(BufferId::new(2))
        );
        assert_eq!(
            PartitionKey::from_region_kind(RegionKind::RtBss),
            PartitionKey::RtBss
        );
    }

    #[test]
    fn pack_lays_out_back_to_back() {
        let g = CacheGeometry::new(64, 4).unwrap();
        let map = PartitionMap::pack(
            g,
            &[
                (PartitionKey::AppData, 4),
                (PartitionKey::AppBss, 8),
                (PartitionKey::RtData, 16),
            ],
        )
        .unwrap();
        assert_eq!(
            map.partition_for(PartitionKey::AppData).unwrap().base_set,
            0
        );
        assert_eq!(map.partition_for(PartitionKey::AppBss).unwrap().base_set, 4);
        assert_eq!(
            map.partition_for(PartitionKey::RtData).unwrap().base_set,
            12
        );
        assert_eq!(map.assigned_sets(), 28);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PartitionKey::Task(TaskId::new(2)).to_string(), "task T2");
        assert_eq!(
            Partition {
                base_set: 4,
                sets: 8
            }
            .to_string(),
            "sets [4, 12)"
        );
    }
}
