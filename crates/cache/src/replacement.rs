//! Replacement policies for set-associative caches.

use serde::{Deserialize, Serialize};

/// Replacement policy selecting the victim way within a set.
///
/// The CAKE L2 modelled by the paper is an LRU cache; the other policies are
/// provided for sensitivity studies (the compositionality property does not
/// depend on the policy, only on the exclusive set allocation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (default).
    #[default]
    Lru,
    /// Evict the way that was filled the longest ago, regardless of use.
    Fifo,
    /// Tree-based pseudo-LRU, as commonly implemented in hardware.
    TreePlru,
    /// Evict a deterministic-pseudo-random way.
    Random,
}

impl ReplacementPolicy {
    /// All supported policies, useful for sweeps in tests and benches.
    pub const ALL: [ReplacementPolicy; 4] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ];
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::TreePlru => "tree-plru",
            ReplacementPolicy::Random => "random",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn all_contains_every_variant_once() {
        assert_eq!(ReplacementPolicy::ALL.len(), 4);
        for (i, a) in ReplacementPolicy::ALL.iter().enumerate() {
            for (j, b) in ReplacementPolicy::ALL.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "lru");
        assert_eq!(ReplacementPolicy::TreePlru.to_string(), "tree-plru");
    }
}
