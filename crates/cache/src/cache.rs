//! The set-associative cache core shared by all organisations.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

use compmem_trace::{Access, LineAddr, RegionId, TaskId};

use crate::config::CacheConfig;
use crate::geometry::CacheGeometry;
use crate::replacement::ReplacementPolicy;
use crate::set::CacheSet;
use crate::stats::{CacheStats, StatsByKey};

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedLine {
    /// The line address that was evicted (tags store the full line address).
    pub line: LineAddr,
    /// Whether the line was dirty and needs a write-back.
    pub dirty: bool,
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether the missed line had never been referenced before (cold miss).
    pub cold: bool,
    /// The line evicted to make room, if any.
    pub evicted: Option<EvictedLine>,
}

impl AccessOutcome {
    /// Returns `true` if the access missed.
    pub fn is_miss(&self) -> bool {
        !self.hit
    }
}

/// Multiply-xorshift hasher for line addresses.
///
/// The cold-miss tracker tests membership on **every** access of every
/// cache, so it cannot afford SipHash; line numbers hashed through one
/// multiplication and a finalising shift distribute well enough for the
/// table and cost a couple of cycles.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineAddrHasher(u64);

impl Hasher for LineAddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut h = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type LineSet = HashSet<LineAddr, BuildHasherDefault<LineAddrHasher>>;

/// A set-associative, write-back, write-allocate cache with per-task and
/// per-region miss attribution.
///
/// The cache operates on whatever set index the caller supplies, so the same
/// core serves the conventional organisation (modulo indexing) and the
/// paper's set-partitioned organisation (index translated through the
/// OS-loaded partition table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<CacheSet>,
    stats: CacheStats,
    by_task: StatsByKey<TaskId>,
    by_region: StatsByKey<RegionId>,
    seen_lines: LineSet,
}

impl SetAssocCache {
    /// Creates an empty cache from a configuration.
    pub fn new(config: CacheConfig) -> Self {
        let geometry = config.geometry();
        let sets = (0..geometry.sets())
            .map(|i| CacheSet::new(geometry.ways(), config.random_seed() ^ u64::from(i)))
            .collect();
        SetAssocCache {
            geometry,
            policy: config.replacement_policy(),
            sets,
            stats: CacheStats::new(),
            by_task: StatsByKey::new(),
            by_region: StatsByKey::new(),
            seen_lines: LineSet::default(),
        }
    }

    /// Returns the geometry of the cache.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Returns the replacement policy of the cache.
    pub fn replacement_policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Accesses the cache with conventional (modulo) set indexing.
    pub fn access(&mut self, access: &Access) -> AccessOutcome {
        let index = self.geometry.index_of(access.addr.line());
        self.access_at(index, u64::MAX, access)
    }

    /// Accesses the cache at an explicitly chosen set index, restricted to
    /// the ways allowed by `allowed_ways`.
    ///
    /// # Panics
    ///
    /// Panics if `set_index` is out of range.
    pub fn access_at(
        &mut self,
        set_index: u32,
        allowed_ways: u64,
        access: &Access,
    ) -> AccessOutcome {
        assert!(
            set_index < self.geometry.sets(),
            "set index {set_index} out of range ({} sets)",
            self.geometry.sets()
        );
        let line = access.addr.line();
        let tag = self.geometry.tag_of(line);
        let outcome = self.sets[set_index.index()].access(
            tag,
            access.kind.is_write(),
            allowed_ways,
            self.policy,
        );
        let evicted = outcome.evicted.map(|(tag, dirty)| EvictedLine {
            line: LineAddr::new(tag),
            dirty,
        });
        // Cold tracking only needs the set membership test on a miss: a hit
        // line is resident, so it was necessarily inserted when it was
        // first filled.
        let cold = !outcome.hit && self.seen_lines.insert(line);
        let writeback = evicted.is_some_and(|e| e.dirty);
        self.stats.record(access.kind, outcome.hit, cold, writeback);
        self.by_task.record(access.task, outcome.hit);
        self.by_region.record(access.region, outcome.hit);
        AccessOutcome {
            hit: outcome.hit,
            cold,
            evicted,
        }
    }

    /// Returns `true` if `line` is currently resident (under conventional
    /// indexing; no statistics or replacement state is updated).
    pub fn probe(&self, line: LineAddr) -> bool {
        let index = self.geometry.index_of(line);
        self.sets[index.index()].probe(self.geometry.tag_of(line))
    }

    /// Returns `true` if `line` is resident in the given set.
    pub fn probe_at(&self, set_index: u32, line: LineAddr) -> bool {
        self.sets[set_index.index()].probe(self.geometry.tag_of(line))
    }

    /// Number of lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(CacheSet::occupancy).sum()
    }

    /// Invalidates the whole cache, returning the number of dirty lines that
    /// would have been written back.
    pub fn flush(&mut self) -> u64 {
        let mut dirty = 0;
        for set in &mut self.sets {
            dirty += set.flush().len() as u64;
        }
        self.seen_lines.clear();
        dirty
    }

    /// Invalidates one set, returning `(invalidated, dirty)` line counts.
    ///
    /// Unlike [`flush`](Self::flush) the cold-miss tracker is untouched:
    /// a repartition-invalidated line was referenced before, so its
    /// re-fetch is a (repartition-induced) conflict miss, not a cold one.
    ///
    /// # Panics
    ///
    /// Panics if `set_index` is out of range.
    pub fn flush_set(&mut self, set_index: u32) -> (u64, u64) {
        assert!(
            set_index < self.geometry.sets(),
            "set index {set_index} out of range ({} sets)",
            self.geometry.sets()
        );
        self.sets[set_index.index()].invalidate_ways(u64::MAX)
    }

    /// Invalidates the ways selected by `mask` in **every** set, returning
    /// `(invalidated, dirty)` line counts; the cold-miss tracker is
    /// untouched, as in [`flush_set`](Self::flush_set).
    pub fn flush_ways(&mut self, mask: u64) -> (u64, u64) {
        let mut invalidated = 0;
        let mut dirty = 0;
        for set in &mut self.sets {
            let (i, d) = set.invalidate_ways(mask);
            invalidated += i;
            dirty += d;
        }
        (invalidated, dirty)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Per-task statistics.
    pub fn stats_by_task(&self) -> &StatsByKey<TaskId> {
        &self.by_task
    }

    /// Per-region statistics.
    pub fn stats_by_region(&self) -> &StatsByKey<RegionId> {
        &self.by_region
    }

    /// Clears all statistics (contents stay resident).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
        self.by_task = StatsByKey::new();
        self.by_region = StatsByKey::new();
    }
}

trait SetIndexExt {
    fn index(self) -> usize;
}

impl SetIndexExt for u32 {
    fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::Addr;

    fn load(addr: u64) -> Access {
        Access::load(Addr::new(addr), 4, TaskId::new(0), RegionId::new(0))
    }

    fn store(addr: u64) -> Access {
        Access::store(Addr::new(addr), 4, TaskId::new(0), RegionId::new(0))
    }

    fn small_cache() -> SetAssocCache {
        SetAssocCache::new(CacheConfig::new(4, 2).unwrap())
    }

    #[test]
    fn second_access_to_same_line_hits() {
        let mut c = small_cache();
        assert!(c.access(&load(0x1000)).is_miss());
        assert!(c.access(&load(0x1004)).hit, "same line, different byte");
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().cold_misses, 1);
    }

    #[test]
    fn conflicting_lines_evict_within_set() {
        let mut c = small_cache();
        // 4 sets * 64 B = 256 B per way; lines 0, 4, 8 map to set 0.
        let set_stride = 4 * 64;
        assert!(c.access(&load(0)).is_miss());
        assert!(c.access(&load(set_stride)).is_miss());
        assert!(c.access(&load(2 * set_stride)).is_miss());
        // Line 0 was LRU and must be gone.
        assert!(c.access(&load(0)).is_miss());
        assert_eq!(c.stats().cold_misses, 3);
        assert_eq!(c.stats().non_cold_misses(), 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 1).unwrap());
        c.access(&store(0));
        let out = c.access(&load(64));
        assert_eq!(
            out.evicted,
            Some(EvictedLine {
                line: LineAddr::new(0),
                dirty: true
            })
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn per_task_and_region_attribution() {
        let mut c = small_cache();
        let a0 = Access::load(Addr::new(0), 4, TaskId::new(0), RegionId::new(0));
        let a1 = Access::load(Addr::new(0x2000), 4, TaskId::new(1), RegionId::new(3));
        c.access(&a0);
        c.access(&a1);
        c.access(&a0);
        assert_eq!(c.stats_by_task().get(&TaskId::new(0)).accesses, 2);
        assert_eq!(c.stats_by_task().get(&TaskId::new(0)).misses, 1);
        assert_eq!(c.stats_by_task().get(&TaskId::new(1)).misses, 1);
        assert_eq!(c.stats_by_region().get(&RegionId::new(3)).accesses, 1);
    }

    #[test]
    fn access_at_respects_explicit_index() {
        let mut c = small_cache();
        // Place the same line in two different sets explicitly; both are
        // misses because the tag is looked up per set.
        assert!(c.access_at(0, u64::MAX, &load(0)).is_miss());
        assert!(c.access_at(1, u64::MAX, &load(0)).is_miss());
        assert!(c.access_at(0, u64::MAX, &load(0)).hit);
        assert!(c.probe_at(1, LineAddr::new(0)));
    }

    #[test]
    fn flush_empties_and_resets_cold_tracking() {
        let mut c = small_cache();
        c.access(&store(0));
        assert_eq!(c.occupancy(), 1);
        let dirty = c.flush();
        assert_eq!(dirty, 1);
        assert_eq!(c.occupancy(), 0);
        let out = c.access(&load(0));
        assert!(out.cold, "after flush the line counts as cold again");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small_cache();
        c.access(&load(0));
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(&load(0)).hit, "contents survived the stats reset");
    }

    #[test]
    #[should_panic(expected = "set index")]
    fn out_of_range_set_index_panics() {
        let mut c = small_cache();
        c.access_at(100, u64::MAX, &load(0));
    }

    #[test]
    fn matches_stack_distance_oracle_for_fully_associative() {
        // A 1-set cache is fully associative: its LRU miss count must match
        // the reuse-distance oracle from the trace crate.
        use compmem_trace::gen::{looping, StreamParams};
        use compmem_trace::stats::ReuseDistanceHistogram;
        let params = StreamParams {
            task: TaskId::new(0),
            region: RegionId::new(0),
            base: Addr::new(0),
            access_size: 4,
        };
        let trace = looping(params, 24 * 64, 64, 5);
        let oracle = ReuseDistanceHistogram::from_accesses(&trace);
        for ways in [8u32, 16, 32] {
            let mut c = SetAssocCache::new(CacheConfig::new(1, ways).unwrap());
            for a in &trace {
                c.access(a);
            }
            assert_eq!(
                c.stats().misses,
                oracle.lru_misses(u64::from(ways)),
                "ways = {ways}"
            );
        }
    }
}
