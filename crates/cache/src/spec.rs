//! Declarative construction of L2 organisations.
//!
//! [`OrganizationSpec`] is the value the experiment layer passes around
//! instead of concrete cache types: it names one of the four organisations
//! of the study together with its organisation-specific parameters, and
//! [`OrganizationSpec::build`] turns it into a ready `Box<dyn CacheModel>`
//! for the platform. Because a spec is plain data (`Clone + Send + Sync`),
//! independent runs over different organisations can be described up front
//! and executed in parallel worker threads, each building its own model.

use std::fmt;

use compmem_trace::RegionTable;

use crate::config::CacheConfig;
use crate::error::CacheError;
use crate::model::{CacheModel, SharedCache};
use crate::partition::{PartitionMap, SetPartitionedCache};
use crate::profile::{CacheSizeLattice, ProfilingCache};
use crate::way_partition::{WayAllocation, WayPartitionedCache};

/// A declarative description of one L2 organisation.
#[derive(Debug, Clone, PartialEq)]
pub enum OrganizationSpec {
    /// The conventional shared cache (the paper's baseline).
    Shared,
    /// The paper's proposal: exclusive groups of sets per entity.
    SetPartitioned(PartitionMap),
    /// The column-caching related work: way masks per entity.
    WayPartitioned(WayAllocation),
    /// The shared baseline plus shadow caches measuring miss-vs-size
    /// profiles on the given lattice.
    Profiling(CacheSizeLattice),
}

impl OrganizationSpec {
    /// Short name of the organisation this spec builds, matching
    /// [`CacheModel::organization`].
    pub fn label(&self) -> &'static str {
        match self {
            OrganizationSpec::Shared => "shared",
            OrganizationSpec::SetPartitioned(_) => "set-partitioned",
            OrganizationSpec::WayPartitioned(_) => "way-partitioned",
            OrganizationSpec::Profiling(_) => "profiling",
        }
    }

    /// Builds the described organisation for a cache of configuration
    /// `config` serving the regions of `regions`.
    ///
    /// # Errors
    ///
    /// Propagates the constructor errors of the partitioned organisations
    /// (uncovered regions, invalid maps); `Shared` and `Profiling` cannot
    /// fail.
    pub fn build(
        &self,
        config: CacheConfig,
        regions: &RegionTable,
    ) -> Result<Box<dyn CacheModel>, CacheError> {
        Ok(match self {
            OrganizationSpec::Shared => Box::new(SharedCache::new(config)),
            OrganizationSpec::SetPartitioned(map) => {
                Box::new(SetPartitionedCache::new(config, regions, map)?)
            }
            OrganizationSpec::WayPartitioned(allocation) => {
                Box::new(WayPartitionedCache::new(config, regions, allocation)?)
            }
            OrganizationSpec::Profiling(lattice) => {
                Box::new(ProfilingCache::new(config, regions, lattice.clone()))
            }
        })
    }
}

impl fmt::Display for OrganizationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionKey;
    use compmem_trace::{Access, RegionId, RegionKind, TaskId};

    fn one_task_table() -> RegionTable {
        let mut table = RegionTable::new();
        table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                64 * 1024,
            )
            .unwrap();
        table
    }

    #[test]
    fn every_spec_builds_its_organisation() {
        let table = one_task_table();
        let config = CacheConfig::new(16, 4).unwrap();
        let map = PartitionMap::pack(
            config.geometry(),
            &[(PartitionKey::Task(TaskId::new(0)), 8)],
        )
        .unwrap();
        let alloc =
            WayAllocation::equal_split(config.geometry(), &[PartitionKey::Task(TaskId::new(0))]);
        let lattice = CacheSizeLattice::new(config.geometry(), 4);
        let specs = [
            (OrganizationSpec::Shared, "shared"),
            (OrganizationSpec::SetPartitioned(map), "set-partitioned"),
            (OrganizationSpec::WayPartitioned(alloc), "way-partitioned"),
            (OrganizationSpec::Profiling(lattice), "profiling"),
        ];
        for (spec, label) in specs {
            assert_eq!(spec.label(), label);
            assert_eq!(spec.to_string(), label);
            let mut model = spec.build(config, &table).unwrap();
            assert_eq!(model.organization(), label);
            let base = table.region(RegionId::new(0)).base;
            let a = Access::load(base, 4, TaskId::new(0), RegionId::new(0));
            assert!(model.access(&a).is_miss());
            assert!(model.access(&a).hit);
        }
    }

    #[test]
    fn partitioned_spec_propagates_coverage_errors() {
        let table = one_task_table();
        let config = CacheConfig::new(16, 4).unwrap();
        // Empty partition map covers no region.
        let spec = OrganizationSpec::SetPartitioned(PartitionMap::new(config.geometry()));
        assert!(matches!(
            spec.build(config, &table),
            Err(CacheError::UnassignedRegion { .. })
        ));
        let spec = OrganizationSpec::WayPartitioned(WayAllocation::new(config.geometry()));
        assert!(matches!(
            spec.build(config, &table),
            Err(CacheError::UnassignedRegion { .. })
        ));
    }

    #[test]
    fn specs_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OrganizationSpec>();
    }
}
