//! Per-set state of a set-associative cache.

use serde::{Deserialize, Serialize};

use crate::replacement::ReplacementPolicy;

/// State of a single filled way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LineState {
    tag: u64,
    dirty: bool,
}

/// Outcome of accessing one set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SetOutcome {
    /// Whether the tag was already present.
    pub hit: bool,
    /// Tag and dirtiness of a line that was evicted to make room, if any.
    pub evicted: Option<(u64, bool)>,
}

/// One cache set: an array of ways plus the replacement metadata.
///
/// Way-partitioned organisations pass an `allowed_ways` bit mask restricting
/// both where a line may be filled and which ways may be victimised; the
/// conventional and set-partitioned organisations pass an all-ones mask.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CacheSet {
    ways: Vec<Option<LineState>>,
    /// Monotonic last-use stamps (LRU and the masked fallback of tree-PLRU).
    use_stamp: Vec<u64>,
    /// Monotonic fill stamps (FIFO).
    fill_stamp: Vec<u64>,
    /// Tree-PLRU internal-node bits.
    plru_bits: u64,
    /// Monotonic event counter for the stamps above.
    clock: u64,
    /// Deterministic xorshift state for the random policy.
    rng_state: u64,
}

impl CacheSet {
    /// Creates an empty set with `ways` ways.
    pub fn new(ways: u32, seed: u64) -> Self {
        CacheSet {
            ways: vec![None; ways as usize],
            use_stamp: vec![0; ways as usize],
            fill_stamp: vec![0; ways as usize],
            plru_bits: 0,
            clock: 0,
            rng_state: seed | 1,
        }
    }

    /// Returns `true` if `tag` is present (no metadata update).
    pub fn probe(&self, tag: u64) -> bool {
        self.ways
            .iter()
            .any(|w| matches!(w, Some(l) if l.tag == tag))
    }

    /// Number of filled ways.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.is_some()).count()
    }

    /// Invalidates every line, returning the tags of dirty lines.
    pub fn flush(&mut self) -> Vec<u64> {
        let dirty = self
            .ways
            .iter()
            .filter_map(|w| w.and_then(|l| l.dirty.then_some(l.tag)))
            .collect();
        for w in &mut self.ways {
            *w = None;
        }
        dirty
    }

    /// Invalidates the lines resident in the ways selected by `mask`,
    /// returning `(invalidated, dirty)` line counts (dirty lines would be
    /// written back). Replacement metadata of the flushed ways is left as
    /// is — the stamps only matter relative to occupied ways.
    pub fn invalidate_ways(&mut self, mask: u64) -> (u64, u64) {
        let mut invalidated = 0;
        let mut dirty = 0;
        for (way, slot) in self.ways.iter_mut().enumerate() {
            if mask & (1 << way) == 0 {
                continue;
            }
            if let Some(line) = slot.take() {
                invalidated += 1;
                if line.dirty {
                    dirty += 1;
                }
            }
        }
        (invalidated, dirty)
    }

    /// Accesses `tag` in this set.
    ///
    /// On a miss the line is filled into an allowed way, evicting a victim if
    /// all allowed ways are occupied. `is_write` marks the line dirty.
    pub fn access(
        &mut self,
        tag: u64,
        is_write: bool,
        allowed_ways: u64,
        policy: ReplacementPolicy,
    ) -> SetOutcome {
        self.clock += 1;
        // Hit path: the line may live in any way (a line filled before a
        // repartitioning may sit outside the current mask; hits on it are
        // still hits, as in column caching).
        if let Some(way) = self
            .ways
            .iter()
            .position(|w| matches!(w, Some(l) if l.tag == tag))
        {
            self.touch(way, policy);
            if is_write {
                if let Some(line) = &mut self.ways[way] {
                    line.dirty = true;
                }
            }
            return SetOutcome {
                hit: true,
                evicted: None,
            };
        }

        // Miss path: fill into a free allowed way, else evict the policy
        // victim among the allowed ways.
        let way = match self.free_allowed_way(allowed_ways) {
            Some(w) => w,
            None => self.victim(allowed_ways, policy),
        };
        let evicted = self.ways[way].map(|l| (l.tag, l.dirty));
        self.ways[way] = Some(LineState {
            tag,
            dirty: is_write,
        });
        self.fill_stamp[way] = self.clock;
        self.touch(way, policy);
        SetOutcome {
            hit: false,
            evicted,
        }
    }

    fn free_allowed_way(&self, allowed_ways: u64) -> Option<usize> {
        (0..self.ways.len()).find(|&w| allowed_ways & (1 << w) != 0 && self.ways[w].is_none())
    }

    fn touch(&mut self, way: usize, policy: ReplacementPolicy) {
        self.use_stamp[way] = self.clock;
        if policy == ReplacementPolicy::TreePlru {
            self.plru_touch(way);
        }
    }

    fn victim(&mut self, allowed_ways: u64, policy: ReplacementPolicy) -> usize {
        let allowed: Vec<usize> = (0..self.ways.len())
            .filter(|&w| allowed_ways & (1 << w) != 0)
            .collect();
        assert!(
            !allowed.is_empty(),
            "way mask must allow at least one way of the set"
        );
        let full_mask = allowed.len() == self.ways.len();
        match policy {
            ReplacementPolicy::Lru => self.min_by_stamp(&allowed, &self.use_stamp),
            ReplacementPolicy::Fifo => self.min_by_stamp(&allowed, &self.fill_stamp),
            ReplacementPolicy::TreePlru if full_mask && self.ways.len().is_power_of_two() => {
                self.plru_victim()
            }
            // Masked tree-PLRU has no meaningful hardware analogue; fall back
            // to LRU stamps restricted to the allowed ways.
            ReplacementPolicy::TreePlru => self.min_by_stamp(&allowed, &self.use_stamp),
            ReplacementPolicy::Random => {
                // xorshift64*
                self.rng_state ^= self.rng_state >> 12;
                self.rng_state ^= self.rng_state << 25;
                self.rng_state ^= self.rng_state >> 27;
                let r = self.rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                allowed[(r % allowed.len() as u64) as usize]
            }
        }
    }

    fn min_by_stamp(&self, allowed: &[usize], stamps: &[u64]) -> usize {
        *allowed
            .iter()
            .min_by_key(|&&w| stamps[w])
            .expect("allowed is non-empty")
    }

    /// Updates the tree-PLRU bits so they point away from `way`.
    fn plru_touch(&mut self, way: usize) {
        let ways = self.ways.len();
        if !ways.is_power_of_two() || ways == 1 {
            return;
        }
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed the left half: point the bit to the right half.
                self.plru_bits |= 1 << node;
                hi = mid;
                node *= 2;
            } else {
                self.plru_bits &= !(1 << node);
                lo = mid;
                node = node * 2 + 1;
            }
        }
    }

    /// Follows the tree-PLRU bits to the victim way.
    fn plru_victim(&self) -> usize {
        let ways = self.ways.len();
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.plru_bits & (1 << node) != 0 {
                // Bit points right.
                lo = mid;
                node = node * 2 + 1;
            } else {
                hi = mid;
                node *= 2;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: u64 = u64::MAX;

    #[test]
    fn fills_empty_ways_before_evicting() {
        let mut set = CacheSet::new(4, 1);
        for tag in 0..4 {
            let out = set.access(tag, false, ALL, ReplacementPolicy::Lru);
            assert!(!out.hit);
            assert!(out.evicted.is_none());
        }
        assert_eq!(set.occupancy(), 4);
        let out = set.access(99, false, ALL, ReplacementPolicy::Lru);
        assert!(!out.hit);
        assert!(out.evicted.is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut set = CacheSet::new(2, 1);
        set.access(1, false, ALL, ReplacementPolicy::Lru);
        set.access(2, false, ALL, ReplacementPolicy::Lru);
        set.access(1, false, ALL, ReplacementPolicy::Lru); // 2 is now LRU
        let out = set.access(3, false, ALL, ReplacementPolicy::Lru);
        assert_eq!(out.evicted, Some((2, false)));
        assert!(set.probe(1));
        assert!(set.probe(3));
    }

    #[test]
    fn fifo_ignores_reuse() {
        let mut set = CacheSet::new(2, 1);
        set.access(1, false, ALL, ReplacementPolicy::Fifo);
        set.access(2, false, ALL, ReplacementPolicy::Fifo);
        set.access(1, false, ALL, ReplacementPolicy::Fifo); // reuse does not protect 1
        let out = set.access(3, false, ALL, ReplacementPolicy::Fifo);
        assert_eq!(out.evicted, Some((1, false)));
    }

    #[test]
    fn dirty_lines_report_dirty_on_eviction() {
        let mut set = CacheSet::new(1, 1);
        set.access(7, true, ALL, ReplacementPolicy::Lru);
        let out = set.access(8, false, ALL, ReplacementPolicy::Lru);
        assert_eq!(out.evicted, Some((7, true)));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut set = CacheSet::new(1, 1);
        set.access(7, false, ALL, ReplacementPolicy::Lru);
        set.access(7, true, ALL, ReplacementPolicy::Lru);
        let out = set.access(8, false, ALL, ReplacementPolicy::Lru);
        assert_eq!(out.evicted, Some((7, true)));
    }

    #[test]
    fn way_mask_restricts_fill_and_victim() {
        let mut set = CacheSet::new(4, 1);
        // Partition A owns ways 0-1, partition B owns ways 2-3.
        let mask_a = 0b0011;
        let mask_b = 0b1100;
        set.access(1, false, mask_a, ReplacementPolicy::Lru);
        set.access(2, false, mask_a, ReplacementPolicy::Lru);
        set.access(10, false, mask_b, ReplacementPolicy::Lru);
        set.access(11, false, mask_b, ReplacementPolicy::Lru);
        // A third line of partition A must evict an A line, not a B line.
        let out = set.access(3, false, mask_a, ReplacementPolicy::Lru);
        assert_eq!(out.evicted, Some((1, false)));
        assert!(set.probe(10));
        assert!(set.probe(11));
    }

    #[test]
    fn hit_outside_mask_is_still_a_hit() {
        let mut set = CacheSet::new(2, 1);
        set.access(5, false, 0b01, ReplacementPolicy::Lru);
        let out = set.access(5, false, 0b10, ReplacementPolicy::Lru);
        assert!(out.hit);
    }

    #[test]
    fn tree_plru_cycles_through_all_ways() {
        let mut set = CacheSet::new(4, 1);
        for tag in 0..4 {
            set.access(tag, false, ALL, ReplacementPolicy::TreePlru);
        }
        // Access tags 0..4 again (all hits), then a stream of new tags must
        // eventually evict every original line: PLRU never evicts the way it
        // just touched.
        let mut evicted = Vec::new();
        for tag in 10..18 {
            let out = set.access(tag, false, ALL, ReplacementPolicy::TreePlru);
            if let Some((t, _)) = out.evicted {
                evicted.push(t);
            }
        }
        assert_eq!(evicted.len(), 8);
        for tag in 0..4 {
            assert!(evicted.contains(&tag), "way holding {tag} never evicted");
        }
    }

    #[test]
    fn plru_victim_is_not_most_recently_used() {
        let mut set = CacheSet::new(4, 1);
        for tag in 0..4 {
            set.access(tag, false, ALL, ReplacementPolicy::TreePlru);
        }
        set.access(2, false, ALL, ReplacementPolicy::TreePlru);
        let out = set.access(42, false, ALL, ReplacementPolicy::TreePlru);
        assert_ne!(out.evicted, Some((2, false)));
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut set = CacheSet::new(4, seed);
            let mut evictions = Vec::new();
            for tag in 0..32 {
                if let Some(e) = set
                    .access(tag, false, ALL, ReplacementPolicy::Random)
                    .evicted
                {
                    evictions.push(e.0);
                }
            }
            evictions
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn flush_returns_dirty_tags_and_empties() {
        let mut set = CacheSet::new(4, 1);
        set.access(1, true, ALL, ReplacementPolicy::Lru);
        set.access(2, false, ALL, ReplacementPolicy::Lru);
        let dirty = set.flush();
        assert_eq!(dirty, vec![1]);
        assert_eq!(set.occupancy(), 0);
        assert!(!set.probe(1));
    }

    #[test]
    #[should_panic(expected = "way mask")]
    fn empty_mask_with_full_set_panics() {
        let mut set = CacheSet::new(2, 1);
        set.access(1, false, ALL, ReplacementPolicy::Lru);
        set.access(2, false, ALL, ReplacementPolicy::Lru);
        set.access(3, false, 0, ReplacementPolicy::Lru);
    }
}
