//! Miss-vs-cache-size profiling: the `m_i(S_k)` inputs of the paper's ILP.
//!
//! The paper obtains, for every task, the number of misses as a function of
//! the exclusively allocated cache size "by simulation or program analysis".
//! The reproduction measures the same quantity in a single pass: the
//! [`ProfilingCache`] is a shared-cache L2 organisation (so the profiling
//! run also *is* the shared-cache baseline run) that additionally replays
//! every access into a bank of per-entity, per-size shadow caches. Because
//! under exclusive set partitioning no other entity influences an entity's
//! misses, the shadow cache of size `S_k` observes exactly the misses the
//! entity would have with an `S_k`-sized partition.
//!
//! The profiling cache is the fourth [`CacheModel`] organisation, so a
//! profiling run goes through exactly the same `Box<dyn CacheModel>` timing
//! path as every other run; its measured [`MissProfiles`] are recovered
//! afterwards by downcasting through [`CacheModel::into_any`].

use std::any::Any;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use compmem_trace::{Access, RegionId, RegionTable, TaskId};

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::CacheConfig;
use crate::geometry::CacheGeometry;
use crate::model::{CacheModel, SharedCache};
use crate::partition::PartitionKey;
use crate::stats::{CacheStats, StatsByKey};

/// The allocation-unit lattice: partition sizes are multiples of a fixed
/// number of sets, restricted to powers of two, exactly as in §3.2 of the
/// paper ("due to implementation reasons `z_k` can be limited to powers of
/// two").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSizeLattice {
    /// Sets per allocation unit.
    pub sets_per_unit: u32,
    /// Total number of allocation units in the cache.
    pub total_units: u32,
    /// Candidate unit counts (powers of two).
    pub candidate_units: Vec<u32>,
}

impl CacheSizeLattice {
    /// Builds the lattice for a cache geometry and a unit size in sets.
    ///
    /// Candidate sizes are the powers of two from one unit up to half the
    /// cache (no single entity may monopolise the whole cache).
    ///
    /// # Panics
    ///
    /// Panics if `sets_per_unit` is zero, not a power of two, or larger than
    /// the cache.
    pub fn new(geometry: CacheGeometry, sets_per_unit: u32) -> Self {
        assert!(
            sets_per_unit > 0
                && sets_per_unit.is_power_of_two()
                && sets_per_unit <= geometry.sets(),
            "sets per unit must be a power of two no larger than the cache"
        );
        let total_units = geometry.sets() / sets_per_unit;
        let max_candidate = (total_units / 2).max(1);
        let mut candidate_units = Vec::new();
        let mut u = 1;
        while u <= max_candidate {
            candidate_units.push(u);
            u *= 2;
        }
        CacheSizeLattice {
            sets_per_unit,
            total_units,
            candidate_units,
        }
    }

    /// The paper's configuration: 512 KB 4-way L2 (2048 sets) divided into
    /// 128 units of 16 sets (4 KB per unit).
    pub fn paper_default() -> Self {
        Self::new(CacheConfig::paper_l2().geometry(), 16)
    }

    /// Bytes per allocation unit for a given geometry.
    pub fn unit_bytes(&self, geometry: CacheGeometry) -> u64 {
        u64::from(self.sets_per_unit) * u64::from(geometry.ways()) * geometry.line_size()
    }

    /// Number of sets of `units` allocation units.
    pub fn sets_of(&self, units: u32) -> u32 {
        units * self.sets_per_unit
    }

    /// The smallest candidate size (in units) whose byte capacity is at
    /// least `bytes` (used to pin FIFO partitions to the FIFO size).
    pub fn units_for_bytes(&self, geometry: CacheGeometry, bytes: u64) -> u32 {
        let unit_bytes = self.unit_bytes(geometry);
        let needed = bytes.div_ceil(unit_bytes).max(1) as u32;
        needed
            .next_power_of_two()
            .min(*self.candidate_units.last().unwrap_or(&1))
    }
}

/// The miss profile of one partition key: misses as a function of the number
/// of exclusively allocated units.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissProfile {
    /// L2 accesses of the entity during the profiling run.
    pub accesses: u64,
    /// Misses for each candidate unit count.
    pub misses_by_units: BTreeMap<u32, u64>,
}

impl MissProfile {
    /// Misses with `units` allocated units.
    ///
    /// For unit counts between candidates the next smaller candidate is
    /// used (conservative).
    pub fn misses_at(&self, units: u32) -> u64 {
        self.misses_by_units
            .range(..=units)
            .next_back()
            .map(|(_, &m)| m)
            .or_else(|| self.misses_by_units.values().next().copied())
            .unwrap_or(0)
    }

    /// Miss reduction obtained by growing the partition from `from` units to
    /// `to` units.
    pub fn gain(&self, from: u32, to: u32) -> u64 {
        self.misses_at(from).saturating_sub(self.misses_at(to))
    }

    /// Predicted miss rate (misses over the entity's profiled L2-bound
    /// accesses) with `units` allocated units. Zero for an entity that
    /// never reached the L2 — the denominator a QoS floor is stated
    /// against.
    pub fn miss_rate_at(&self, units: u32) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses_at(units) as f64 / self.accesses as f64
        }
    }
}

/// Profiles of every partition key observed during a profiling run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissProfiles {
    /// Per-key profiles.
    pub profiles: BTreeMap<PartitionKey, MissProfile>,
    /// The lattice the profiles were measured on.
    pub lattice_units: Vec<u32>,
}

impl MissProfiles {
    /// Profile of one key, if it generated any L2 traffic.
    pub fn profile(&self, key: PartitionKey) -> Option<&MissProfile> {
        self.profiles.get(&key)
    }

    /// All keys with a profile, in deterministic order.
    pub fn keys(&self) -> Vec<PartitionKey> {
        self.profiles.keys().copied().collect()
    }

    /// Total misses over all keys for a given per-key allocation (keys
    /// absent from `units` contribute their smallest-size misses).
    pub fn total_misses(&self, units: &BTreeMap<PartitionKey, u32>) -> u64 {
        self.profiles
            .iter()
            .map(|(key, p)| p.misses_at(units.get(key).copied().unwrap_or(1)))
            .sum()
    }
}

/// A shared-cache L2 that simultaneously measures per-entity miss profiles.
///
/// The "main" cache behaves exactly like [`SharedCache`], so the run that
/// produces the profiles is also the paper's shared-cache baseline; the
/// shadow caches are pure observers and do not influence it.
#[derive(Debug)]
pub struct ProfilingCache {
    main: SharedCache,
    lattice: CacheSizeLattice,
    /// Partition key of every region (dense by region index).
    region_keys: Vec<PartitionKey>,
    /// Shadow caches: for every key, one cache per candidate unit count.
    shadows: BTreeMap<PartitionKey, Vec<(u32, SetAssocCache)>>,
    accesses_by_key: BTreeMap<PartitionKey, u64>,
}

impl ProfilingCache {
    /// Creates a profiling cache for the given main-cache configuration,
    /// region table and lattice.
    pub fn new(config: CacheConfig, regions: &RegionTable, lattice: CacheSizeLattice) -> Self {
        let region_keys = regions
            .iter()
            .map(|r| PartitionKey::from_region_kind(r.kind))
            .collect();
        ProfilingCache {
            main: SharedCache::new(config),
            lattice,
            region_keys,
            shadows: BTreeMap::new(),
            accesses_by_key: BTreeMap::new(),
        }
    }

    fn shadow_config(&self, units: u32) -> CacheConfig {
        let ways = self.main.geometry().ways();
        CacheConfig::new(self.lattice.sets_of(units), ways)
            .expect("lattice sizes are powers of two")
    }

    /// Extracts the measured profiles.
    pub fn into_profiles(self) -> MissProfiles {
        let mut profiles = BTreeMap::new();
        for (key, shadows) in self.shadows {
            let mut profile = MissProfile {
                accesses: self.accesses_by_key.get(&key).copied().unwrap_or(0),
                misses_by_units: BTreeMap::new(),
            };
            for (units, cache) in shadows {
                profile.misses_by_units.insert(units, cache.stats().misses);
            }
            profiles.insert(key, profile);
        }
        MissProfiles {
            profiles,
            lattice_units: self.lattice.candidate_units.clone(),
        }
    }

    /// The lattice used by this profiler.
    pub fn lattice(&self) -> &CacheSizeLattice {
        &self.lattice
    }
}

impl CacheModel for ProfilingCache {
    fn organization(&self) -> &'static str {
        "profiling"
    }

    fn access(&mut self, access: &Access) -> AccessOutcome {
        let key = self.region_keys[access.region.index()];
        *self.accesses_by_key.entry(key).or_insert(0) += 1;
        // Lazily create the shadow bank for this key.
        if !self.shadows.contains_key(&key) {
            let bank = self
                .lattice
                .candidate_units
                .iter()
                .map(|&u| (u, SetAssocCache::new(self.shadow_config(u))))
                .collect();
            self.shadows.insert(key, bank);
        }
        let line = access.addr.line();
        if let Some(bank) = self.shadows.get_mut(&key) {
            for (units, cache) in bank.iter_mut() {
                let sets = self.lattice.sets_of(*units);
                let index = (line.value() % u64::from(sets)) as u32;
                let _ = cache.access_at(index, u64::MAX, access);
            }
        }
        self.main.access(access)
    }

    fn geometry(&self) -> CacheGeometry {
        self.main.geometry()
    }

    fn stats(&self) -> &CacheStats {
        self.main.stats()
    }

    fn stats_by_task(&self) -> &StatsByKey<TaskId> {
        self.main.stats_by_task()
    }

    fn stats_by_region(&self) -> &StatsByKey<RegionId> {
        self.main.stats_by_region()
    }

    fn flush(&mut self) -> u64 {
        self.main.flush()
    }

    fn reset_stats(&mut self) {
        self.main.reset_stats()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::{Addr, RegionKind};

    fn region_table() -> RegionTable {
        let mut t = RegionTable::new();
        t.insert(
            "t0.data",
            RegionKind::TaskData {
                task: TaskId::new(0),
            },
            256 * 1024,
        )
        .unwrap();
        t.insert(
            "t1.data",
            RegionKind::TaskData {
                task: TaskId::new(1),
            },
            256 * 1024,
        )
        .unwrap();
        t
    }

    #[test]
    fn lattice_of_the_paper() {
        let lattice = CacheSizeLattice::paper_default();
        assert_eq!(lattice.total_units, 128);
        assert_eq!(lattice.sets_per_unit, 16);
        assert_eq!(lattice.candidate_units, vec![1, 2, 4, 8, 16, 32, 64]);
        let geometry = CacheConfig::paper_l2().geometry();
        assert_eq!(lattice.unit_bytes(geometry), 4096);
        assert_eq!(lattice.units_for_bytes(geometry, 1), 1);
        assert_eq!(lattice.units_for_bytes(geometry, 4096), 1);
        assert_eq!(lattice.units_for_bytes(geometry, 4097), 2);
        assert_eq!(lattice.units_for_bytes(geometry, 20_000), 8);
    }

    #[test]
    fn profile_lookup_uses_next_smaller_candidate() {
        let mut profile = MissProfile::default();
        profile.misses_by_units.insert(1, 100);
        profile.misses_by_units.insert(4, 40);
        profile.misses_by_units.insert(16, 10);
        assert_eq!(profile.misses_at(1), 100);
        assert_eq!(profile.misses_at(2), 100);
        assert_eq!(profile.misses_at(4), 40);
        assert_eq!(profile.misses_at(10), 40);
        assert_eq!(profile.misses_at(64), 10);
        assert_eq!(profile.gain(1, 16), 90);
    }

    #[test]
    fn shadow_caches_measure_per_entity_working_sets() {
        let regions = region_table();
        let config = CacheConfig::new(256, 4).unwrap();
        let lattice = CacheSizeLattice::new(config.geometry(), 16);
        let mut cache = ProfilingCache::new(config, &regions, lattice);
        // Task 0 loops over a 32 KB working set (8 units of 4 KB), task 1
        // over 8 KB (2 units); both repeat their sweep four times.
        let t0_base = regions.region(RegionId::new(0)).base;
        let t1_base = regions.region(RegionId::new(1)).base;
        for _round in 0..4 {
            for line in 0..(32 * 1024 / 64) {
                let a = Access::load(
                    t0_base.offset(line * 64),
                    4,
                    TaskId::new(0),
                    RegionId::new(0),
                );
                cache.access(&a);
            }
            for line in 0..(8 * 1024 / 64) {
                let a = Access::load(
                    t1_base.offset(line * 64),
                    4,
                    TaskId::new(1),
                    RegionId::new(1),
                );
                cache.access(&a);
            }
        }
        let profiles = cache.into_profiles();
        let p0 = profiles
            .profile(PartitionKey::Task(TaskId::new(0)))
            .unwrap();
        let p1 = profiles
            .profile(PartitionKey::Task(TaskId::new(1)))
            .unwrap();
        // With a partition at least as large as the working set only the
        // cold misses remain; with a smaller partition the LRU sweep misses
        // every time.
        assert_eq!(p0.misses_at(8), 512);
        assert_eq!(p0.misses_at(4), 4 * 512);
        assert_eq!(p1.misses_at(2), 128);
        assert_eq!(p1.misses_at(1), 4 * 128);
        assert_eq!(p0.accesses, 4 * 512);
        // The total-misses helper combines per-key lookups.
        let mut alloc = BTreeMap::new();
        alloc.insert(PartitionKey::Task(TaskId::new(0)), 8);
        alloc.insert(PartitionKey::Task(TaskId::new(1)), 2);
        assert_eq!(profiles.total_misses(&alloc), 512 + 128);
    }

    #[test]
    fn main_cache_behaves_like_a_shared_cache() {
        let regions = region_table();
        let config = CacheConfig::new(64, 4).unwrap();
        let lattice = CacheSizeLattice::new(config.geometry(), 16);
        let mut profiling = ProfilingCache::new(config, &regions, lattice);
        let mut shared = SharedCache::new(config);
        let base = regions.region(RegionId::new(0)).base;
        for i in 0..1000u64 {
            let a = Access::load(
                base.offset((i * 7 % 300) * 64),
                4,
                TaskId::new(0),
                RegionId::new(0),
            );
            assert_eq!(profiling.access(&a).hit, shared.access(&a).hit);
        }
        assert_eq!(profiling.stats(), shared.stats());
        let _ = Addr::new(0);
    }

    #[test]
    fn profiles_survive_the_trait_object_round_trip() {
        let regions = region_table();
        let config = CacheConfig::new(64, 4).unwrap();
        let lattice = CacheSizeLattice::new(config.geometry(), 16);
        let mut boxed: Box<dyn CacheModel> =
            Box::new(ProfilingCache::new(config, &regions, lattice));
        let base = regions.region(RegionId::new(0)).base;
        for i in 0..64u64 {
            let a = Access::load(base.offset(i * 64), 4, TaskId::new(0), RegionId::new(0));
            boxed.access(&a);
        }
        assert_eq!(boxed.organization(), "profiling");
        let profiler = boxed
            .into_any()
            .downcast::<ProfilingCache>()
            .expect("box holds the profiling organisation");
        let profiles = profiler.into_profiles();
        let p = profiles
            .profile(PartitionKey::Task(TaskId::new(0)))
            .unwrap();
        assert_eq!(p.accesses, 64);
    }
}
