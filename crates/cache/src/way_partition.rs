//! Way-partitioned (column-caching) baseline.
//!
//! The related work the paper compares against (Suh et al., Stone et al.)
//! partitions the cache by *ways*: every key is restricted to a subset of
//! the ways of every set. Section 2 of the paper argues that this severely
//! restricts the allocation granularity — a 4-way cache can only be divided
//! into at most four exclusive partitions, and the smallest possible
//! partition is a quarter of the cache. This module implements that scheme
//! so the ablation experiment (E6 of DESIGN.md) can quantify the argument.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use compmem_trace::{Access, RegionId, RegionTable, TaskId};

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::CacheConfig;
use crate::error::CacheError;
use crate::geometry::CacheGeometry;
use crate::model::CacheModel;
use crate::partition::PartitionKey;
use crate::schedule::FlushStats;
use crate::spec::OrganizationSpec;
use crate::stats::{CacheStats, StatsByKey};

/// Assignment of way masks to partition keys.
///
/// ```
/// use compmem_cache::{CacheGeometry, PartitionKey, WayAllocation};
/// use compmem_trace::TaskId;
/// # fn main() -> Result<(), compmem_cache::CacheError> {
/// let geometry = CacheGeometry::new(128, 4)?;
/// let mut alloc = WayAllocation::new(geometry);
/// alloc.assign(PartitionKey::Task(TaskId::new(0)), 0b0011)?;
/// alloc.assign(PartitionKey::Task(TaskId::new(1)), 0b1100)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WayAllocation {
    geometry: CacheGeometry,
    masks: BTreeMap<PartitionKey, u64>,
}

impl WayAllocation {
    /// Creates an empty allocation for a cache of the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        WayAllocation {
            geometry,
            masks: BTreeMap::new(),
        }
    }

    /// Geometry the allocation was built for.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Iterates over `(key, mask)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&PartitionKey, &u64)> {
        self.masks.iter()
    }

    /// Assigns the ways selected by `mask` to `key`.
    ///
    /// Masks of different keys may overlap (shared ways), as in dynamic
    /// column caching.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidWayMask`] if the mask is zero or selects
    /// ways beyond the associativity.
    pub fn assign(&mut self, key: PartitionKey, mask: u64) -> Result<(), CacheError> {
        let ways = self.geometry.ways();
        let valid = if ways == 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        };
        if mask == 0 || mask & !valid != 0 {
            return Err(CacheError::InvalidWayMask { mask, ways });
        }
        self.masks.insert(key, mask);
        Ok(())
    }

    /// Splits the ways as evenly as possible over `keys`, in order, giving
    /// each key at least one way. With more keys than ways the ways are
    /// shared round-robin (which is exactly the granularity problem §2 of
    /// the paper points out).
    pub fn equal_split(geometry: CacheGeometry, keys: &[PartitionKey]) -> Self {
        let mut alloc = WayAllocation::new(geometry);
        if keys.is_empty() {
            return alloc;
        }
        let ways = geometry.ways() as usize;
        for (i, &key) in keys.iter().enumerate() {
            let mask = if keys.len() <= ways {
                // Contiguous chunk of ways for each key.
                let per = ways / keys.len();
                let extra = ways % keys.len();
                let start = i * per + i.min(extra);
                let count = per + usize::from(i < extra);
                ((1u64 << count) - 1) << start
            } else {
                // More keys than ways: each key gets a single (shared) way.
                1u64 << (i % ways)
            };
            alloc
                .assign(key, mask)
                .expect("constructed masks are valid");
        }
        alloc
    }

    /// Returns the mask assigned to `key`, if any.
    pub fn mask_for(&self, key: PartitionKey) -> Option<u64> {
        self.masks.get(&key).copied()
    }

    /// Number of keys with an assigned mask.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Returns `true` if no mask has been assigned.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Checks that every region of `table` maps to a key with a mask.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnassignedRegion`] naming the first uncovered
    /// region.
    pub fn validate_covers(&self, table: &RegionTable) -> Result<(), CacheError> {
        for region in table.iter() {
            let key = PartitionKey::from_region_kind(region.kind);
            if !self.masks.contains_key(&key) {
                return Err(CacheError::UnassignedRegion {
                    region: region.id.index(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for WayAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "way allocation ({} ways):", self.geometry.ways())?;
        for (key, mask) in &self.masks {
            writeln!(f, "  {key}: {mask:#06b}")?;
        }
        Ok(())
    }
}

/// Column-caching organisation: conventional set indexing, but fills and
/// evictions of each key are restricted to its assigned ways.
#[derive(Debug, Clone)]
pub struct WayPartitionedCache {
    inner: SetAssocCache,
    /// The allocation currently loaded into the controller.
    allocation: WayAllocation,
    region_masks: Vec<(u64, PartitionKey)>,
    by_partition: StatsByKey<PartitionKey>,
}

impl WayPartitionedCache {
    /// Creates a way-partitioned cache.
    ///
    /// # Errors
    ///
    /// Returns an error if the allocation does not cover every region of the
    /// table.
    pub fn new(
        config: CacheConfig,
        regions: &RegionTable,
        allocation: &WayAllocation,
    ) -> Result<Self, CacheError> {
        allocation.validate_covers(regions)?;
        Ok(WayPartitionedCache {
            inner: SetAssocCache::new(config),
            region_masks: Self::region_masks(regions, allocation),
            allocation: allocation.clone(),
            by_partition: StatsByKey::new(),
        })
    }

    /// The dense region-index -> (mask, key) table of a validated
    /// allocation.
    fn region_masks(regions: &RegionTable, allocation: &WayAllocation) -> Vec<(u64, PartitionKey)> {
        regions
            .iter()
            .map(|r| {
                let key = PartitionKey::from_region_kind(r.kind);
                let mask = allocation
                    .mask_for(key)
                    .expect("validated: every region key has a mask");
                (mask, key)
            })
            .collect()
    }

    /// The allocation currently loaded into the controller.
    pub fn allocation(&self) -> &WayAllocation {
        &self.allocation
    }

    /// Per-partition-key statistics.
    pub fn stats_by_partition(&self) -> &StatsByKey<PartitionKey> {
        &self.by_partition
    }

    /// Loads a new way allocation into the live cache — the column-caching
    /// analogue of
    /// [`SetPartitionedCache::repartition`](crate::SetPartitionedCache::repartition).
    ///
    /// A way's *owner set* is the set of keys whose mask selects it. Every
    /// way whose owner set changes is invalidated across all sets (its
    /// resident lines belong to the old owners); ways owned by exactly
    /// the same keys keep their contents. Dirty invalidated lines are
    /// counted as write-backs. Invalidated lines do not become cold
    /// again, and statistics are preserved across the switch.
    ///
    /// # Errors
    ///
    /// Returns an error if the new allocation's geometry differs from the
    /// cache's or it does not cover every region of `regions`.
    pub fn reallocate(
        &mut self,
        regions: &RegionTable,
        allocation: &WayAllocation,
    ) -> Result<FlushStats, CacheError> {
        if allocation.geometry() != self.inner.geometry() {
            return Err(CacheError::InvalidGeometry {
                parameter: "way-allocation sets",
                value: u64::from(allocation.geometry().sets()),
            });
        }
        allocation.validate_covers(regions)?;
        // Owner sets per way, old and new, as sorted key lists.
        let ways = self.inner.geometry().ways();
        let owners = |alloc: &WayAllocation, way: u32| -> Vec<PartitionKey> {
            alloc
                .iter()
                .filter(|(_, mask)| *mask & (1 << way) != 0)
                .map(|(key, _)| *key)
                .collect()
        };
        let mut changed = 0u64;
        for way in 0..ways {
            if owners(&self.allocation, way) != owners(allocation, way) {
                changed |= 1 << way;
            }
        }
        let (invalidated, written_back) = if changed == 0 {
            (0, 0)
        } else {
            self.inner.flush_ways(changed)
        };
        self.region_masks = Self::region_masks(regions, allocation);
        self.allocation = allocation.clone();
        Ok(FlushStats {
            invalidated,
            written_back,
        })
    }
}

impl CacheModel for WayPartitionedCache {
    fn organization(&self) -> &'static str {
        "way-partitioned"
    }

    fn access(&mut self, access: &Access) -> AccessOutcome {
        let (mask, key) = self.region_masks[access.region.index()];
        let set = self.inner.geometry().index_of(access.addr.line());
        let outcome = self.inner.access_at(set, mask, access);
        self.by_partition.record(key, outcome.hit);
        outcome
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn stats_by_task(&self) -> &StatsByKey<TaskId> {
        self.inner.stats_by_task()
    }

    fn stats_by_region(&self) -> &StatsByKey<RegionId> {
        self.inner.stats_by_region()
    }

    fn stats_by_partition(&self) -> Option<&StatsByKey<PartitionKey>> {
        Some(&self.by_partition)
    }

    fn flush(&mut self) -> u64 {
        self.inner.flush()
    }

    fn reconfigure(
        &mut self,
        spec: &OrganizationSpec,
        regions: &RegionTable,
    ) -> Result<FlushStats, CacheError> {
        match spec {
            OrganizationSpec::WayPartitioned(allocation) => self.reallocate(regions, allocation),
            other => Err(CacheError::ReconfigureUnsupported {
                from: self.organization(),
                to: other.label(),
            }),
        }
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.by_partition = StatsByKey::new();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::RegionKind;

    fn two_task_table() -> (RegionTable, RegionId, RegionId) {
        let mut table = RegionTable::new();
        let r0 = table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                64 * 1024,
            )
            .unwrap();
        let r1 = table
            .insert(
                "t1.data",
                RegionKind::TaskData {
                    task: TaskId::new(1),
                },
                64 * 1024,
            )
            .unwrap();
        (table, r0, r1)
    }

    #[test]
    fn mask_validation() {
        let g = CacheGeometry::new(16, 4).unwrap();
        let mut alloc = WayAllocation::new(g);
        assert!(matches!(
            alloc.assign(PartitionKey::AppData, 0),
            Err(CacheError::InvalidWayMask { .. })
        ));
        assert!(matches!(
            alloc.assign(PartitionKey::AppData, 0b10000),
            Err(CacheError::InvalidWayMask { .. })
        ));
        alloc.assign(PartitionKey::AppData, 0b1010).unwrap();
        assert_eq!(alloc.mask_for(PartitionKey::AppData), Some(0b1010));
    }

    #[test]
    fn equal_split_covers_all_ways_disjointly_when_possible() {
        let g = CacheGeometry::new(16, 4).unwrap();
        let keys = [
            PartitionKey::Task(TaskId::new(0)),
            PartitionKey::Task(TaskId::new(1)),
        ];
        let alloc = WayAllocation::equal_split(g, &keys);
        let m0 = alloc.mask_for(keys[0]).unwrap();
        let m1 = alloc.mask_for(keys[1]).unwrap();
        assert_eq!(m0 & m1, 0);
        assert_eq!(m0 | m1, 0b1111);
    }

    #[test]
    fn equal_split_shares_ways_when_keys_exceed_associativity() {
        let g = CacheGeometry::new(16, 2).unwrap();
        let keys: Vec<_> = (0..5).map(|i| PartitionKey::Task(TaskId::new(i))).collect();
        let alloc = WayAllocation::equal_split(g, &keys);
        for k in &keys {
            let m = alloc.mask_for(*k).unwrap();
            assert_eq!(m.count_ones(), 1);
        }
        // With 5 keys over 2 ways some keys must share a way.
        let distinct: std::collections::BTreeSet<u64> =
            keys.iter().map(|k| alloc.mask_for(*k).unwrap()).collect();
        assert!(distinct.len() <= 2);
    }

    #[test]
    fn disjoint_ways_isolate_tasks() {
        let (table, r0, r1) = two_task_table();
        let config = CacheConfig::new(16, 4).unwrap();
        let alloc = WayAllocation::equal_split(
            config.geometry(),
            &[
                PartitionKey::Task(TaskId::new(0)),
                PartitionKey::Task(TaskId::new(1)),
            ],
        );
        let mut cache = WayPartitionedCache::new(config, &table, &alloc).unwrap();
        let base0 = table.region(r0).base;
        let base1 = table.region(r1).base;
        // Task 0 fills its two ways of set 0 (lines 0 and 16 both map to set
        // 0 of a 16-set cache).
        let t0 = [
            Access::load(base0, 4, TaskId::new(0), r0),
            Access::load(base0.offset(16 * 64), 4, TaskId::new(0), r0),
        ];
        for a in &t0 {
            cache.access(a);
        }
        // Task 1 thrashes the same sets heavily.
        for i in 0..512 {
            let a = Access::load(base1.offset(i * 64), 4, TaskId::new(1), r1);
            cache.access(&a);
        }
        for a in &t0 {
            assert!(cache.access(a).hit, "task 1 stole a way from task 0");
        }
    }

    #[test]
    fn uncovered_region_rejected() {
        let (table, _, _) = two_task_table();
        let config = CacheConfig::new(16, 4).unwrap();
        let mut alloc = WayAllocation::new(config.geometry());
        alloc
            .assign(PartitionKey::Task(TaskId::new(0)), 0b0011)
            .unwrap();
        assert!(matches!(
            WayPartitionedCache::new(config, &table, &alloc),
            Err(CacheError::UnassignedRegion { .. })
        ));
    }

    #[test]
    fn reallocate_flushes_only_ways_that_change_owners() {
        let (table, r0, r1) = two_task_table();
        let config = CacheConfig::new(16, 4).unwrap();
        let keys = [
            PartitionKey::Task(TaskId::new(0)),
            PartitionKey::Task(TaskId::new(1)),
        ];
        let mut old = WayAllocation::new(config.geometry());
        old.assign(keys[0], 0b0011).unwrap();
        old.assign(keys[1], 0b1100).unwrap();
        let mut cache = WayPartitionedCache::new(config, &table, &old).unwrap();
        let base0 = table.region(r0).base;
        let base1 = table.region(r1).base;
        // Task 0 fills its two ways of set 0 (one dirty); task 1 fills its
        // two ways of set 0.
        cache.access(&Access::store(base0, 4, TaskId::new(0), r0));
        cache.access(&Access::load(base0.offset(16 * 64), 4, TaskId::new(0), r0));
        let t1 = [
            Access::load(base1, 4, TaskId::new(1), r1),
            Access::load(base1.offset(16 * 64), 4, TaskId::new(1), r1),
        ];
        for a in &t1 {
            cache.access(a);
        }

        // Task 0 gives way 1 to task 1: ways 1 and 2..3 change owners
        // (way 0 stays task 0's alone). Wait — way 1 moves from {t0} to
        // {t1}, ways 2-3 stay {t1}: flushed ways are exactly way 1.
        let mut new = WayAllocation::new(config.geometry());
        new.assign(keys[0], 0b0001).unwrap();
        new.assign(keys[1], 0b1110).unwrap();
        let stats = cache.reallocate(&table, &new).unwrap();
        // Only way 1's resident lines were invalidated (at most one per
        // set was filled here).
        assert!(stats.invalidated >= 1);
        assert!(stats.invalidated <= 2);
        for a in &t1 {
            assert!(cache.access(a).hit, "task 1's ways 2-3 were untouched");
        }
        assert_eq!(cache.allocation().mask_for(keys[0]), Some(0b0001));

        // An identical reallocation flushes nothing.
        let stats = cache.reallocate(&table, &new).unwrap();
        assert_eq!(stats, FlushStats::default());

        // Validation failures leave the allocation untouched.
        let uncovered = {
            let mut a = WayAllocation::new(config.geometry());
            a.assign(keys[0], 0b0001).unwrap();
            a
        };
        assert!(matches!(
            cache.reallocate(&table, &uncovered),
            Err(CacheError::UnassignedRegion { .. })
        ));
        assert_eq!(cache.allocation(), &new);
    }

    #[test]
    fn display_lists_masks() {
        let g = CacheGeometry::new(16, 4).unwrap();
        let mut alloc = WayAllocation::new(g);
        alloc.assign(PartitionKey::RtData, 0b0001).unwrap();
        let s = alloc.to_string();
        assert!(s.contains("rt.data"));
        assert!(s.contains("0b0001"));
    }
}
