//! Cache geometry: the line / set / way organisation.

use serde::{Deserialize, Serialize};

use compmem_trace::{LineAddr, LINE_SIZE_BYTES};

use crate::error::CacheError;

/// The organisation of a set-associative cache.
///
/// The line size is fixed crate-wide at [`LINE_SIZE_BYTES`]; sets and ways
/// must be non-zero powers of two so that the index can be extracted with a
/// mask, exactly like the hardware the paper models.
///
/// ```
/// use compmem_cache::CacheGeometry;
/// # fn main() -> Result<(), compmem_cache::CacheError> {
/// // The paper's L2: 512 KB, 4-way, 64-byte lines => 2048 sets.
/// let l2 = CacheGeometry::new(2048, 4)?;
/// assert_eq!(l2.size_bytes(), 512 * 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry with the given number of sets and ways.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidGeometry`] if either parameter is zero or
    /// not a power of two.
    pub fn new(sets: u32, ways: u32) -> Result<Self, CacheError> {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(CacheError::InvalidGeometry {
                parameter: "sets",
                value: u64::from(sets),
            });
        }
        if ways == 0 || !ways.is_power_of_two() {
            return Err(CacheError::InvalidGeometry {
                parameter: "ways",
                value: u64::from(ways),
            });
        }
        Ok(CacheGeometry { sets, ways })
    }

    /// Creates the geometry of a cache of `size_bytes` with the given
    /// associativity.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidGeometry`] if the implied set count is
    /// zero or not a power of two.
    pub fn with_size(size_bytes: u64, ways: u32) -> Result<Self, CacheError> {
        let way_bytes = u64::from(ways) * LINE_SIZE_BYTES;
        if way_bytes == 0 || !size_bytes.is_multiple_of(way_bytes) {
            return Err(CacheError::InvalidGeometry {
                parameter: "size_bytes",
                value: size_bytes,
            });
        }
        let sets = size_bytes / way_bytes;
        Self::new(sets as u32, ways)
    }

    /// Number of sets.
    pub const fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity (ways per set).
    pub const fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub const fn line_size(&self) -> u64 {
        LINE_SIZE_BYTES
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * LINE_SIZE_BYTES
    }

    /// Total capacity in cache lines.
    pub const fn lines(&self) -> u64 {
        self.sets as u64 * self.ways as u64
    }

    /// The set a line maps to under conventional (modulo) indexing.
    pub const fn index_of(&self, line: LineAddr) -> u32 {
        (line.value() % self.sets as u64) as u32
    }

    /// The tag of a line: the full line address is used as tag so that any
    /// index remapping (set partitioning) remains unambiguous.
    pub const fn tag_of(&self, line: LineAddr) -> u64 {
        line.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l2_geometry() {
        let g = CacheGeometry::with_size(512 * 1024, 4).unwrap();
        assert_eq!(g.sets(), 2048);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.size_bytes(), 524_288);
        assert_eq!(g.lines(), 8192);
    }

    #[test]
    fn l1_geometry() {
        let g = CacheGeometry::with_size(16 * 1024, 4).unwrap();
        assert_eq!(g.sets(), 64);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheGeometry::new(3, 4).is_err());
        assert!(CacheGeometry::new(64, 3).is_err());
        assert!(CacheGeometry::new(0, 4).is_err());
        assert!(CacheGeometry::new(64, 0).is_err());
        assert!(CacheGeometry::with_size(100, 4).is_err());
    }

    #[test]
    fn index_wraps_modulo_sets() {
        let g = CacheGeometry::new(64, 4).unwrap();
        assert_eq!(g.index_of(LineAddr::new(0)), 0);
        assert_eq!(g.index_of(LineAddr::new(63)), 63);
        assert_eq!(g.index_of(LineAddr::new(64)), 0);
        assert_eq!(g.index_of(LineAddr::new(130)), 2);
    }

    #[test]
    fn tag_is_full_line_address() {
        let g = CacheGeometry::new(64, 4).unwrap();
        assert_eq!(g.tag_of(LineAddr::new(12345)), 12345);
    }
}
