//! The organisation trait and the conventional shared-cache baseline.

use compmem_trace::{Access, RegionId, TaskId};

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::CacheConfig;
use crate::geometry::CacheGeometry;
use crate::stats::{CacheStats, StatsByKey};

/// A cache organisation: how set indices (and allowed ways) are derived from
/// an access.
///
/// The multiprocessor platform is generic over this trait so that the
/// paper's three points of comparison — conventional shared cache,
/// set-partitioned cache and way-partitioned (column) cache — can be swapped
/// without touching the rest of the system.
pub trait CacheOrganization {
    /// Performs one access and returns its outcome.
    fn access(&mut self, access: &Access) -> AccessOutcome;

    /// Geometry of the underlying cache.
    fn geometry(&self) -> CacheGeometry;

    /// Aggregate statistics.
    fn stats(&self) -> &CacheStats;

    /// Per-task statistics.
    fn stats_by_task(&self) -> &StatsByKey<TaskId>;

    /// Per-region statistics.
    fn stats_by_region(&self) -> &StatsByKey<RegionId>;

    /// Invalidates the cache contents, returning the number of dirty lines.
    fn flush(&mut self) -> u64;

    /// Clears statistics without touching contents.
    fn reset_stats(&mut self);
}

/// The baseline of the paper: a conventional shared cache in which every
/// task indexes every set, so tasks evict each other unpredictably.
#[derive(Debug, Clone)]
pub struct SharedCache {
    inner: SetAssocCache,
}

impl SharedCache {
    /// Creates a shared cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        SharedCache {
            inner: SetAssocCache::new(config),
        }
    }

    /// Returns the underlying set-associative cache.
    pub fn inner(&self) -> &SetAssocCache {
        &self.inner
    }
}

impl CacheOrganization for SharedCache {
    fn access(&mut self, access: &Access) -> AccessOutcome {
        self.inner.access(access)
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn stats_by_task(&self) -> &StatsByKey<TaskId> {
        self.inner.stats_by_task()
    }

    fn stats_by_region(&self) -> &StatsByKey<RegionId> {
        self.inner.stats_by_region()
    }

    fn flush(&mut self) -> u64 {
        self.inner.flush()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::Addr;

    #[test]
    fn tasks_interfere_in_a_shared_cache() {
        // Two tasks alternately touching working sets that each fit in the
        // cache but together do not: every access misses after warmup.
        let mut cache = SharedCache::new(CacheConfig::new(4, 1).unwrap());
        let lines_per_ws = 4;
        let mut accesses = Vec::new();
        for round in 0..8 {
            for i in 0..lines_per_ws {
                // Task 0 at base 0, task 1 at base 16 KiB; both map onto the
                // same 4 sets of the tiny cache.
                for (task, base) in [(0u32, 0u64), (1, 16 * 1024)] {
                    accesses.push(Access::load(
                        Addr::new(base + i * 64),
                        4,
                        TaskId::new(task),
                        RegionId::new(task),
                    ));
                }
            }
            let _ = round;
        }
        for a in &accesses {
            cache.access(a);
        }
        let stats = cache.stats();
        // With both tasks thrashing the same sets, far more than the cold
        // misses occur.
        assert_eq!(stats.cold_misses, 8);
        assert!(
            stats.misses > stats.cold_misses * 4,
            "expected heavy inter-task conflict, got {stats:?}"
        );
        assert_eq!(
            cache.stats_by_task().get(&TaskId::new(0)).accesses,
            cache.stats_by_task().get(&TaskId::new(1)).accesses
        );
    }

    #[test]
    fn trait_object_usable() {
        let mut cache: Box<dyn CacheOrganization> =
            Box::new(SharedCache::new(CacheConfig::new(4, 2).unwrap()));
        let a = Access::load(Addr::new(0), 4, TaskId::new(0), RegionId::new(0));
        assert!(cache.access(&a).is_miss());
        assert!(cache.access(&a).hit);
        assert_eq!(cache.geometry().sets(), 4);
        cache.reset_stats();
        assert_eq!(cache.stats().accesses, 0);
        assert_eq!(cache.flush(), 0);
    }
}
