//! Cache models for the `compmem` compositional memory system.
//!
//! This crate provides the cache substrate of the reproduction of
//! *"Compositional memory systems for multimedia communicating tasks"*
//! (Molnos et al., DATE 2005):
//!
//! * [`CacheGeometry`] / [`CacheConfig`] — line/set/way organisation.
//! * [`SetAssocCache`] — a set-associative cache with selectable
//!   [`ReplacementPolicy`] (LRU, tree-PLRU, FIFO, random), write-back /
//!   write-allocate behaviour, and per-task / per-region miss accounting.
//! * [`CacheModel`] — the **object-safe** trait unifying the four L2
//!   organisations of the study; the multiprocessor platform holds a
//!   `Box<dyn CacheModel>`, so organisations are interchangeable at run
//!   time and one timing path serves every experiment.
//! * [`SharedCache`] — the baseline organisation of the paper: all tasks
//!   index the cache directly and evict each other freely.
//! * [`SetPartitionedCache`] — the paper's proposal: an OS-loaded
//!   translation table maps every region (task, FIFO, frame buffer, shared
//!   static section) to an exclusive group of sets, and the set index is
//!   recomputed inside that group.
//! * [`WayPartitionedCache`] — the column-caching baseline from the related
//!   work (Suh et al. / Stone et al.), which restricts each partition to a
//!   subset of the ways of every set; its granularity is limited by the
//!   associativity, which is the argument §2 of the paper makes against it.
//! * [`ProfilingCache`] — the shared baseline plus per-entity shadow caches
//!   measuring the miss-vs-size curves ([`MissProfiles`]) that feed the
//!   partition-sizing optimiser (kept as the cross-validation oracle of
//!   the single-pass profiler below).
//! * [`StackDistanceProfiler`] — the **single-pass** replacement for the
//!   shadow-cache bank: per-key, per-set bounded Mattson reuse stacks at
//!   every power-of-two set count produce a [`MissRateCurve`] per entity —
//!   the exact miss count at *every* resolved cache shape from one pass —
//!   and [`MissRateCurves::to_profiles`] converts them into the
//!   [`MissProfiles`] of any [`CacheSizeLattice`].
//! * [`OrganizationSpec`] — a declarative, `Send + Sync` description of any
//!   of the four organisations; [`OrganizationSpec::build`] produces the
//!   `Box<dyn CacheModel>` a run executes against.
//! * [`PartitionSchedule`] — partitioning as a **time-varying policy**:
//!   validated, ordered `(at_cycle, OrganizationSpec)` steps. The platform
//!   applies each later step to the live cache through
//!   [`CacheModel::reconfigure`] (a new [`PartitionMap`] /
//!   [`WayAllocation`] loaded in place), invalidating the lines whose
//!   set/way ownership changed and reporting them as [`FlushStats`] so the
//!   flush traffic can be charged on the bus/DRAM timing path.
//!
//! (The workspace-level architecture guide — layers, dataflow, the
//! one-pass profiling invariant — lives in `docs/ARCHITECTURE.md`; the
//! CLI walkthrough in `docs/CLI.md`.)
//!
//! # Example
//!
//! ```
//! use compmem_cache::{CacheConfig, CacheModel, OrganizationSpec};
//! use compmem_trace::{Access, Addr, RegionId, RegionTable, TaskId};
//!
//! # fn main() -> Result<(), compmem_cache::CacheError> {
//! let config = CacheConfig::new(64, 4)?; // 64 sets, 4 ways, 64-byte lines
//! let regions = RegionTable::new();
//! let mut cache = OrganizationSpec::Shared.build(config, &regions)?;
//! let a = Access::load(Addr::new(0x4000), 4, TaskId::new(0), RegionId::new(0));
//! let first = cache.access(&a);
//! let second = cache.access(&a);
//! assert!(!first.hit);
//! assert!(second.hit);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod distance;
mod error;
mod geometry;
mod model;
mod partition;
mod profile;
mod replacement;
mod schedule;
mod set;
mod spec;
mod stats;
mod way_partition;

pub use cache::{AccessOutcome, EvictedLine, SetAssocCache};
pub use config::CacheConfig;
pub use distance::{
    curve_delta, CurveResolution, CurveWindow, MissRateCurve, MissRateCurves, OnlinePhaseDetector,
    Phase, PlannedWindow, PlannedWindowedProfiler, StackDistanceProfiler, WindowConfig, WindowKind,
    WindowPlan, WindowedCurves, WindowedProfiler,
};
pub use error::CacheError;
pub use geometry::CacheGeometry;
pub use model::{CacheModel, CacheSnapshot, SharedCache};
pub use partition::{Partition, PartitionKey, PartitionMap, SetPartitionedCache};
pub use profile::{CacheSizeLattice, MissProfile, MissProfiles, ProfilingCache};
pub use replacement::ReplacementPolicy;
pub use schedule::{FlushStats, PartitionSchedule, ScheduleStep};
pub use spec::OrganizationSpec;
pub use stats::{CacheStats, KeyStats, StatsByKey};
pub use way_partition::{WayAllocation, WayPartitionedCache};
