//! Synthetic access-stream generators.
//!
//! These generators are used by unit tests, property tests and the cache
//! micro-benchmarks. They produce the classic parametric streams cache
//! studies are built on — sequential sweeps, strided walks, loop nests over a
//! working set, and uniformly random accesses inside a working set — all
//! attributed to a task and region so they can drive the partitioned cache
//! exactly like workload traffic does.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::access::{Access, AccessKind};
use crate::addr::Addr;
use crate::region::{Region, RegionId, TaskId};

/// Parameters shared by all generators: who issues the accesses and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamParams {
    /// Task the accesses are attributed to.
    pub task: TaskId,
    /// Region the accesses are attributed to.
    pub region: RegionId,
    /// First byte address of the stream.
    pub base: Addr,
    /// Size in bytes of each access.
    pub access_size: u16,
}

impl StreamParams {
    /// Builds stream parameters covering the whole of `region`.
    pub fn for_region(region: &Region, task: TaskId) -> Self {
        StreamParams {
            task,
            region: region.id,
            base: region.base,
            access_size: 4,
        }
    }
}

/// Generates `count` sequential loads starting at the stream base, advancing
/// by `stride` bytes per access.
///
/// A stride of one line produces the classic streaming pattern with no
/// temporal reuse; a small stride produces spatial reuse within lines.
pub fn strided(params: StreamParams, stride: u64, count: usize) -> Vec<Access> {
    (0..count)
        .map(|i| {
            Access::load(
                params.base.offset(i as u64 * stride),
                params.access_size,
                params.task,
                params.region,
            )
        })
        .collect()
}

/// Generates `repeats` passes of sequential loads over a working set of
/// `working_set_bytes`, touching every `stride`-th byte.
///
/// When the working set fits in a cache the second and later passes hit;
/// when it does not, the LRU behaviour produces the classic thrashing
/// pattern. This is the access shape whose miss-vs-size curve has the sharp
/// knee the paper's optimiser exploits.
pub fn looping(
    params: StreamParams,
    working_set_bytes: u64,
    stride: u64,
    repeats: usize,
) -> Vec<Access> {
    assert!(stride > 0, "stride must be non-zero");
    let per_pass = (working_set_bytes / stride) as usize;
    let mut out = Vec::with_capacity(per_pass * repeats);
    for _ in 0..repeats {
        for i in 0..per_pass {
            out.push(Access::load(
                params.base.offset(i as u64 * stride),
                params.access_size,
                params.task,
                params.region,
            ));
        }
    }
    out
}

/// Generates `count` loads at uniformly random line-aligned offsets inside a
/// working set of `working_set_bytes`, using a deterministic seed.
pub fn random_in_working_set(
    params: StreamParams,
    working_set_bytes: u64,
    count: usize,
    seed: u64,
) -> Vec<Access> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lines = (working_set_bytes / crate::LINE_SIZE_BYTES).max(1);
    (0..count)
        .map(|_| {
            let line = rng.gen_range(0..lines);
            Access::load(
                params.base.offset(line * crate::LINE_SIZE_BYTES),
                params.access_size,
                params.task,
                params.region,
            )
        })
        .collect()
}

/// Generates a read-modify-write pattern: for each of `count` elements the
/// stream loads then stores the same address, advancing by `stride` bytes.
pub fn read_modify_write(params: StreamParams, stride: u64, count: usize) -> Vec<Access> {
    let mut out = Vec::with_capacity(count * 2);
    for i in 0..count {
        let addr = params.base.offset(i as u64 * stride);
        out.push(Access::load(
            addr,
            params.access_size,
            params.task,
            params.region,
        ));
        out.push(Access::store(
            addr,
            params.access_size,
            params.task,
            params.region,
        ));
    }
    out
}

/// Generates an instruction-fetch stream that models a task executing
/// `instructions` instructions from a code footprint of `code_bytes`.
///
/// The program counter advances sequentially and wraps around the footprint
/// (a steady-state loop body), emitting one line-sized fetch per
/// `instrs_per_line` instructions.
pub fn instruction_stream(
    params: StreamParams,
    code_bytes: u64,
    instructions: u64,
    instrs_per_line: u64,
) -> Vec<Access> {
    assert!(
        instrs_per_line > 0,
        "instructions per line must be non-zero"
    );
    let lines = (code_bytes / crate::LINE_SIZE_BYTES).max(1);
    let fetches = instructions.div_ceil(instrs_per_line);
    (0..fetches)
        .map(|i| {
            let line = i % lines;
            Access::ifetch(
                params.base.offset(line * crate::LINE_SIZE_BYTES),
                crate::LINE_SIZE_BYTES as u16,
                params.task,
                params.region,
            )
        })
        .collect()
}

/// Interleaves several access streams round-robin, approximating concurrent
/// execution of independent tasks on different processors.
pub fn interleave(streams: Vec<Vec<Access>>) -> Vec<Access> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; streams.len()];
    let mut remaining = total;
    while remaining > 0 {
        for (stream, cursor) in streams.iter().zip(cursors.iter_mut()) {
            if *cursor < stream.len() {
                out.push(stream[*cursor]);
                *cursor += 1;
                remaining -= 1;
            }
        }
    }
    out
}

/// Returns the fraction of accesses of the given kind in `accesses`.
pub fn kind_fraction(accesses: &[Access], kind: AccessKind) -> f64 {
    if accesses.is_empty() {
        return 0.0;
    }
    let n = accesses.iter().filter(|a| a.kind == kind).count();
    n as f64 / accesses.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LINE_SIZE_BYTES;

    fn params() -> StreamParams {
        StreamParams {
            task: TaskId::new(0),
            region: RegionId::new(0),
            base: Addr::new(0x1000),
            access_size: 4,
        }
    }

    #[test]
    fn strided_advances_by_stride() {
        let s = strided(params(), 64, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].addr, Addr::new(0x1000));
        assert_eq!(s[3].addr, Addr::new(0x1000 + 3 * 64));
    }

    #[test]
    fn looping_repeats_the_working_set() {
        let s = looping(params(), 256, 64, 3);
        assert_eq!(s.len(), 4 * 3);
        assert_eq!(s[0].addr, s[4].addr);
        assert_eq!(s[3].addr, s[11].addr);
    }

    #[test]
    fn random_stream_is_deterministic_and_bounded() {
        let a = random_in_working_set(params(), 4096, 100, 7);
        let b = random_in_working_set(params(), 4096, 100, 7);
        assert_eq!(a, b);
        for acc in &a {
            assert!(acc.addr >= Addr::new(0x1000));
            assert!(acc.addr < Addr::new(0x1000 + 4096));
            assert_eq!(acc.addr.value() % LINE_SIZE_BYTES, 0x1000 % LINE_SIZE_BYTES);
        }
        let c = random_in_working_set(params(), 4096, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn rmw_alternates_load_store() {
        let s = read_modify_write(params(), 8, 3);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0].kind, AccessKind::Load);
        assert_eq!(s[1].kind, AccessKind::Store);
        assert_eq!(s[0].addr, s[1].addr);
    }

    #[test]
    fn instruction_stream_wraps_over_footprint() {
        let s = instruction_stream(params(), 2 * LINE_SIZE_BYTES, 64, 16);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].addr, s[2].addr);
        assert_eq!(s[1].addr, s[3].addr);
        assert!(s.iter().all(|a| a.kind == AccessKind::InstrFetch));
    }

    #[test]
    fn interleave_preserves_all_accesses() {
        let a = strided(params(), 64, 3);
        let b = strided(params(), 64, 5);
        let merged = interleave(vec![a.clone(), b.clone()]);
        assert_eq!(merged.len(), 8);
        assert_eq!(merged[0], a[0]);
        assert_eq!(merged[1], b[0]);
        assert_eq!(merged[7], b[4]);
    }

    #[test]
    fn kind_fraction_counts() {
        let s = read_modify_write(params(), 8, 10);
        assert!((kind_fraction(&s, AccessKind::Load) - 0.5).abs() < 1e-9);
        assert!((kind_fraction(&s, AccessKind::Store) - 0.5).abs() < 1e-9);
        assert_eq!(kind_fraction(&[], AccessKind::Load), 0.0);
    }
}
