//! Synthetic access-stream generators and the **workload zoo**.
//!
//! The free functions at the top produce the classic parametric streams
//! cache studies are built on — sequential sweeps, strided walks, loop
//! nests over a working set, and uniformly random accesses inside a
//! working set — all attributed to a task and region so they can drive
//! the partitioned cache exactly like workload traffic does. They are
//! used by unit tests, property tests and the cache micro-benchmarks.
//!
//! The workload zoo ([`GenSpec`] / [`generate`]) builds on them: a
//! deterministic, seed-parameterised scenario generator that emits
//! standard v2 [`EncodedTrace`]s, so every layer above this crate
//! (profiling, shape sweeps, schedules, replay lanes, the online
//! controller, `compmem serve`) consumes synthetic scenarios with zero
//! changes. Four task families ([`GenKind`]) cover the canonical cache
//! behaviours — Zipf working sets, streaming scans, pointer chases and
//! phased mixtures with real regime structure — and a multi-program mix
//! composer interleaves per-task streams proportionally into one trace
//! with a region table. Generator provenance (family, parameters, seed)
//! is carried in the region names, the one string channel that survives
//! the codec round-trip, so `compmem info` can reconstruct how any
//! stored trace was generated ([`provenance`]).

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::access::{Access, AccessKind};
use crate::addr::Addr;
use crate::codec::{CodecError, EncodedTrace, TraceWriter};
use crate::error::TraceError;
use crate::region::{Region, RegionId, RegionKind, RegionTable, TaskId};
use crate::LINE_SIZE_BYTES;

/// Parameters shared by all generators: who issues the accesses and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamParams {
    /// Task the accesses are attributed to.
    pub task: TaskId,
    /// Region the accesses are attributed to.
    pub region: RegionId,
    /// First byte address of the stream.
    pub base: Addr,
    /// Size in bytes of each access.
    pub access_size: u16,
}

impl StreamParams {
    /// Builds stream parameters covering the whole of `region`.
    pub fn for_region(region: &Region, task: TaskId) -> Self {
        StreamParams {
            task,
            region: region.id,
            base: region.base,
            access_size: 4,
        }
    }
}

/// Generates `count` sequential loads starting at the stream base, advancing
/// by `stride` bytes per access.
///
/// A stride of one line produces the classic streaming pattern with no
/// temporal reuse; a small stride produces spatial reuse within lines.
pub fn strided(params: StreamParams, stride: u64, count: usize) -> Vec<Access> {
    (0..count)
        .map(|i| {
            Access::load(
                params.base.offset(i as u64 * stride),
                params.access_size,
                params.task,
                params.region,
            )
        })
        .collect()
}

/// Generates `repeats` passes of sequential loads over a working set of
/// `working_set_bytes`, touching every `stride`-th byte.
///
/// When the working set fits in a cache the second and later passes hit;
/// when it does not, the LRU behaviour produces the classic thrashing
/// pattern. This is the access shape whose miss-vs-size curve has the sharp
/// knee the paper's optimiser exploits.
pub fn looping(
    params: StreamParams,
    working_set_bytes: u64,
    stride: u64,
    repeats: usize,
) -> Vec<Access> {
    assert!(stride > 0, "stride must be non-zero");
    let per_pass = (working_set_bytes / stride) as usize;
    let mut out = Vec::with_capacity(per_pass * repeats);
    for _ in 0..repeats {
        for i in 0..per_pass {
            out.push(Access::load(
                params.base.offset(i as u64 * stride),
                params.access_size,
                params.task,
                params.region,
            ));
        }
    }
    out
}

/// Generates `count` loads at uniformly random line-aligned offsets inside a
/// working set of `working_set_bytes`, using a deterministic seed.
pub fn random_in_working_set(
    params: StreamParams,
    working_set_bytes: u64,
    count: usize,
    seed: u64,
) -> Vec<Access> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lines = (working_set_bytes / crate::LINE_SIZE_BYTES).max(1);
    (0..count)
        .map(|_| {
            let line = rng.gen_range(0..lines);
            Access::load(
                params.base.offset(line * crate::LINE_SIZE_BYTES),
                params.access_size,
                params.task,
                params.region,
            )
        })
        .collect()
}

/// Generates a read-modify-write pattern: for each of `count` elements the
/// stream loads then stores the same address, advancing by `stride` bytes.
pub fn read_modify_write(params: StreamParams, stride: u64, count: usize) -> Vec<Access> {
    let mut out = Vec::with_capacity(count * 2);
    for i in 0..count {
        let addr = params.base.offset(i as u64 * stride);
        out.push(Access::load(
            addr,
            params.access_size,
            params.task,
            params.region,
        ));
        out.push(Access::store(
            addr,
            params.access_size,
            params.task,
            params.region,
        ));
    }
    out
}

/// Generates an instruction-fetch stream that models a task executing
/// `instructions` instructions from a code footprint of `code_bytes`.
///
/// The program counter advances sequentially and wraps around the footprint
/// (a steady-state loop body), emitting one line-sized fetch per
/// `instrs_per_line` instructions.
pub fn instruction_stream(
    params: StreamParams,
    code_bytes: u64,
    instructions: u64,
    instrs_per_line: u64,
) -> Vec<Access> {
    assert!(
        instrs_per_line > 0,
        "instructions per line must be non-zero"
    );
    let lines = (code_bytes / crate::LINE_SIZE_BYTES).max(1);
    let fetches = instructions.div_ceil(instrs_per_line);
    (0..fetches)
        .map(|i| {
            let line = i % lines;
            Access::ifetch(
                params.base.offset(line * crate::LINE_SIZE_BYTES),
                crate::LINE_SIZE_BYTES as u16,
                params.task,
                params.region,
            )
        })
        .collect()
}

/// Interleaves several access streams round-robin, approximating concurrent
/// execution of independent tasks on different processors.
pub fn interleave(streams: Vec<Vec<Access>>) -> Vec<Access> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; streams.len()];
    let mut remaining = total;
    while remaining > 0 {
        for (stream, cursor) in streams.iter().zip(cursors.iter_mut()) {
            if *cursor < stream.len() {
                out.push(stream[*cursor]);
                *cursor += 1;
                remaining -= 1;
            }
        }
    }
    out
}

// === The workload zoo ====================================================

/// Default cycles between consecutive interleaved accesses of a generated
/// trace. Matched to the platform's pipelined issue rate so controller
/// windows measured in cycles line up with access counts.
pub const DEFAULT_CYCLES_PER_ACCESS: u64 = 4;

/// One task family of the workload zoo.
///
/// Footprints are in bytes and rounded up to whole cache lines by the
/// region table. Every family is fully deterministic given the spec's
/// seed; [`GenKind::Scan`] and the phased loop/scan regimes are
/// seed-independent by construction (their access order is a pure
/// function of the index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenKind {
    /// Zipf-distributed loads over a working set: line `r` receives
    /// traffic proportional to `1/(r+1)`, so a few hot lines dominate and
    /// the tail decays — the reuse pattern the stack-distance profiler's
    /// convex miss curves come from.
    Zipf {
        /// Size of the working set in bytes.
        working_set_bytes: u64,
    },
    /// Streaming scan: line-strided sequential loads wrapping over a
    /// footprint larger than any cache level — the classic no-reuse
    /// adversary used as the streamer in the isolation harness.
    Scan {
        /// Size of the scanned footprint in bytes.
        footprint_bytes: u64,
    },
    /// Pointer chase: a cyclic walk of a seeded random permutation of the
    /// working set's lines. Dependent loads with no spatial locality —
    /// hits once the working set fits, thrashes the moment it does not.
    Chase {
        /// Size of the chased working set in bytes.
        working_set_bytes: u64,
    },
    /// Phased mixture: alternates a hot loop over `hot_bytes` with a
    /// streaming scan over `scan_bytes` every `phase_accesses` accesses —
    /// traffic with real regime structure for the online controller.
    Phased {
        /// Size of the hot loop's working set in bytes.
        hot_bytes: u64,
        /// Size of the scan regime's footprint in bytes.
        scan_bytes: u64,
        /// Accesses per regime before switching to the other.
        phase_accesses: u64,
    },
}

impl GenKind {
    /// Short family name (`zipf`, `scan`, `chase`, `phased`).
    pub fn label(&self) -> &'static str {
        match self {
            GenKind::Zipf { .. } => "zipf",
            GenKind::Scan { .. } => "scan",
            GenKind::Chase { .. } => "chase",
            GenKind::Phased { .. } => "phased",
        }
    }

    /// Total bytes the task's data region must span.
    pub fn footprint_bytes(&self) -> u64 {
        match *self {
            GenKind::Zipf { working_set_bytes } => working_set_bytes,
            GenKind::Scan { footprint_bytes } => footprint_bytes,
            GenKind::Chase { working_set_bytes } => working_set_bytes,
            GenKind::Phased {
                hot_bytes,
                scan_bytes,
                ..
            } => hot_bytes.max(scan_bytes),
        }
    }

    /// Whether the family consumes the seed (scans and phased mixtures
    /// are pure functions of the access index).
    pub fn is_seeded(&self) -> bool {
        matches!(self, GenKind::Zipf { .. } | GenKind::Chase { .. })
    }

    /// The provenance tokens this family contributes to its region name.
    fn name_params(&self) -> String {
        match *self {
            GenKind::Zipf { working_set_bytes } => format!("ws{working_set_bytes}"),
            GenKind::Scan { footprint_bytes } => format!("fp{footprint_bytes}"),
            GenKind::Chase { working_set_bytes } => format!("ws{working_set_bytes}"),
            GenKind::Phased {
                hot_bytes,
                scan_bytes,
                phase_accesses,
            } => format!("hot{hot_bytes}.scan{scan_bytes}.p{phase_accesses}"),
        }
    }

    /// Generates the task's access stream (`accesses` loads over `params`'
    /// region) with the given per-task RNG.
    fn stream(&self, params: StreamParams, accesses: u64, rng: &mut SmallRng) -> Vec<Access> {
        let line_at = |line: u64| {
            Access::load(
                params.base.offset(line * LINE_SIZE_BYTES),
                params.access_size,
                params.task,
                params.region,
            )
        };
        match *self {
            GenKind::Zipf { working_set_bytes } => {
                let lines = (working_set_bytes / LINE_SIZE_BYTES).max(1);
                // Integer harmonic weights (no floats: byte-determinism
                // across platforms): line r weighs SCALE/(r+1), cumulated
                // into a prefix-sum table sampled by binary search.
                const SCALE: u64 = 1 << 20;
                let mut cumulative = Vec::with_capacity(lines as usize);
                let mut total = 0u64;
                for rank in 0..lines {
                    total += (SCALE / (rank + 1)).max(1);
                    cumulative.push(total);
                }
                (0..accesses)
                    .map(|_| {
                        let x = rng.gen_range(0..total);
                        let rank = cumulative.partition_point(|&c| c <= x) as u64;
                        line_at(rank)
                    })
                    .collect()
            }
            GenKind::Scan { footprint_bytes } => {
                let lines = (footprint_bytes / LINE_SIZE_BYTES).max(1);
                (0..accesses).map(|i| line_at(i % lines)).collect()
            }
            GenKind::Chase { working_set_bytes } => {
                let lines = (working_set_bytes / LINE_SIZE_BYTES).max(1);
                // Fisher–Yates permutation of the working set's lines; the
                // walk visits the full cycle in that fixed random order.
                let mut order: Vec<u64> = (0..lines).collect();
                for i in (1..order.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    order.swap(i, j);
                }
                (0..accesses)
                    .map(|i| line_at(order[(i % lines) as usize]))
                    .collect()
            }
            GenKind::Phased {
                hot_bytes,
                scan_bytes,
                phase_accesses,
            } => {
                let hot_lines = (hot_bytes / LINE_SIZE_BYTES).max(1);
                let scan_lines = (scan_bytes / LINE_SIZE_BYTES).max(1);
                (0..accesses)
                    .map(|i| {
                        if (i / phase_accesses) % 2 == 0 {
                            line_at(i % hot_lines)
                        } else {
                            line_at(i % scan_lines)
                        }
                    })
                    .collect()
            }
        }
    }
}

impl fmt::Display for GenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GenKind::Zipf { working_set_bytes } => {
                write!(
                    f,
                    "zipf over a {} working set",
                    fmt_bytes(working_set_bytes)
                )
            }
            GenKind::Scan { footprint_bytes } => {
                write!(f, "streaming scan over {}", fmt_bytes(footprint_bytes))
            }
            GenKind::Chase { working_set_bytes } => {
                write!(f, "pointer chase over {}", fmt_bytes(working_set_bytes))
            }
            GenKind::Phased {
                hot_bytes,
                scan_bytes,
                phase_accesses,
            } => write!(
                f,
                "phased {} hot loop / {} scan, switching every {} accesses",
                fmt_bytes(hot_bytes),
                fmt_bytes(scan_bytes),
                phase_accesses
            ),
        }
    }
}

/// Renders a byte count as KB when whole, bytes otherwise.
fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{} KB", bytes / 1024)
    } else {
        format!("{bytes} B")
    }
}

/// One task of a generated scenario: a family and its access budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenTask {
    /// The task's family and parameters.
    pub kind: GenKind,
    /// Accesses the task issues over the whole trace.
    pub accesses: u64,
}

/// A complete synthetic scenario: a seed, an issue rate and one or more
/// tasks whose streams the composer interleaves proportionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenSpec {
    /// Master seed; each task derives its own RNG from it.
    pub seed: u64,
    /// Cycles between consecutive interleaved accesses (a uniform issue
    /// rate, so recorded cycles are globally nondecreasing).
    pub cycles_per_access: u64,
    /// The scenario's tasks; task `i` becomes `TaskId(i)` on processor `i`.
    pub tasks: Vec<GenTask>,
}

impl GenSpec {
    /// A one-task scenario at the default issue rate.
    pub fn single(kind: GenKind, seed: u64, accesses: u64) -> Self {
        GenSpec::mix(vec![GenTask { kind, accesses }], seed)
    }

    /// A multi-task scenario at the default issue rate.
    pub fn mix(tasks: Vec<GenTask>, seed: u64) -> Self {
        GenSpec {
            seed,
            cycles_per_access: DEFAULT_CYCLES_PER_ACCESS,
            tasks,
        }
    }

    /// Total accesses across all tasks.
    pub fn total_accesses(&self) -> u64 {
        self.tasks.iter().map(|t| t.accesses).sum()
    }
}

/// Why a [`GenSpec`] could not be generated.
#[derive(Debug)]
pub enum GenError {
    /// The spec itself is malformed (no tasks, zero accesses, zero-sized
    /// footprint, zero-length phases, a zero issue rate).
    InvalidSpec {
        /// What is wrong with the spec.
        reason: String,
    },
    /// The region table rejected a task's data region.
    Trace(TraceError),
    /// Encoding the composed stream failed.
    Codec(CodecError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InvalidSpec { reason } => write!(f, "invalid generator spec: {reason}"),
            GenError::Trace(e) => write!(f, "cannot build the scenario's region table: {e}"),
            GenError::Codec(e) => write!(f, "cannot encode the generated trace: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<TraceError> for GenError {
    fn from(e: TraceError) -> Self {
        GenError::Trace(e)
    }
}

impl From<CodecError> for GenError {
    fn from(e: CodecError) -> Self {
        GenError::Codec(e)
    }
}

/// Generator provenance parsed back out of a region name.
///
/// Region names are the only string channel that survives the trace codec
/// round-trip, so [`generate`] encodes each task's family, parameters,
/// access budget, seed and index into its data region's name (e.g.
/// `gen.zipf.ws24576.n20000.s42.t0`) and this type carries the decoded
/// form — enough to reconstruct the exact [`GenSpec`] task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenProvenance {
    /// The task's index in the generating spec (and its processor).
    pub task_index: u32,
    /// The task's family and parameters.
    pub kind: GenKind,
    /// Accesses the task issued.
    pub accesses: u64,
    /// The spec's master seed.
    pub seed: u64,
}

impl fmt::Display for GenProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {}: {} ({} accesses, seed {})",
            self.task_index, self.kind, self.accesses, self.seed
        )
    }
}

/// The region name carrying one task's provenance.
fn region_name(kind: GenKind, accesses: u64, seed: u64, task_index: u32) -> String {
    format!(
        "gen.{}.{}.n{accesses}.s{seed}.t{task_index}",
        kind.label(),
        kind.name_params()
    )
}

/// Parses one `u64` token with the given prefix (`ws24576` → `24576`).
fn parse_token(token: &str, prefix: &str) -> Option<u64> {
    token.strip_prefix(prefix)?.parse().ok()
}

/// Parses generator provenance back out of a region name, if the region
/// was produced by [`generate`].
pub fn parse_region_name(name: &str) -> Option<GenProvenance> {
    let rest = name.strip_prefix("gen.")?;
    let tokens: Vec<&str> = rest.split('.').collect();
    let (kind, tail) = match *tokens.first()? {
        "zipf" => (
            GenKind::Zipf {
                working_set_bytes: parse_token(tokens.get(1)?, "ws")?,
            },
            &tokens[2..],
        ),
        "scan" => (
            GenKind::Scan {
                footprint_bytes: parse_token(tokens.get(1)?, "fp")?,
            },
            &tokens[2..],
        ),
        "chase" => (
            GenKind::Chase {
                working_set_bytes: parse_token(tokens.get(1)?, "ws")?,
            },
            &tokens[2..],
        ),
        "phased" => (
            GenKind::Phased {
                hot_bytes: parse_token(tokens.get(1)?, "hot")?,
                scan_bytes: parse_token(tokens.get(2)?, "scan")?,
                phase_accesses: parse_token(tokens.get(3)?, "p")?,
            },
            &tokens[4..],
        ),
        _ => return None,
    };
    let [n, s, t] = tail else { return None };
    Some(GenProvenance {
        task_index: u32::try_from(parse_token(t, "t")?).ok()?,
        kind,
        accesses: parse_token(n, "n")?,
        seed: parse_token(s, "s")?,
    })
}

/// Generator provenance of every zoo-generated region in a table, in task
/// order. Empty for recorded (non-generated) traces.
pub fn provenance(table: &RegionTable) -> Vec<GenProvenance> {
    let mut out: Vec<GenProvenance> = table
        .iter()
        .filter_map(|region| parse_region_name(&region.name))
        .collect();
    out.sort_by_key(|p| p.task_index);
    out
}

/// Generates the scenario a [`GenSpec`] describes as a standard encoded
/// trace.
///
/// Each task gets its own data region (named for its provenance) and its
/// own RNG derived from the master seed, so adding a task never perturbs
/// another task's stream. The composer interleaves the per-task streams
/// proportionally — at every slot the task furthest behind its fair share
/// issues next (ties to the lowest index) — and records task `i` on
/// processor `i` at a uniform issue rate, so cycles are globally
/// nondecreasing and a 4:1 access-budget ratio really is 4:1 at every
/// point of the trace. Identical specs produce byte-identical traces.
///
/// # Errors
///
/// Returns [`GenError::InvalidSpec`] for malformed specs; table and codec
/// failures are propagated (they cannot occur for valid specs).
pub fn generate(spec: &GenSpec) -> Result<EncodedTrace, GenError> {
    let invalid = |reason: String| GenError::InvalidSpec { reason };
    if spec.tasks.is_empty() {
        return Err(invalid("a scenario needs at least one task".into()));
    }
    if spec.cycles_per_access == 0 {
        return Err(invalid("cycles-per-access must be at least 1".into()));
    }
    for (i, task) in spec.tasks.iter().enumerate() {
        if task.accesses == 0 {
            return Err(invalid(format!("task {i} has an access budget of 0")));
        }
        if task.kind.footprint_bytes() == 0 {
            return Err(invalid(format!("task {i} has a zero-byte footprint")));
        }
        if let GenKind::Phased { phase_accesses, .. } = task.kind {
            if phase_accesses == 0 {
                return Err(invalid(format!("task {i} has a zero-length phase")));
            }
        }
    }

    let mut table = RegionTable::new();
    let mut streams = Vec::with_capacity(spec.tasks.len());
    for (i, task) in spec.tasks.iter().enumerate() {
        let index = i as u32;
        let task_id = TaskId::new(index);
        let region_id = table.insert(
            region_name(task.kind, task.accesses, spec.seed, index),
            RegionKind::TaskData { task: task_id },
            task.kind.footprint_bytes(),
        )?;
        let region = &table.regions()[table.len() - 1];
        debug_assert_eq!(region.id, region_id);
        let params = StreamParams::for_region(region, task_id);
        // Derive a distinct, well-mixed RNG per task so task streams are
        // independent of each other and of the task count.
        let mut rng = SmallRng::seed_from_u64(
            spec.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1),
        );
        streams.push(task.kind.stream(params, task.accesses, &mut rng));
    }

    let mut writer = TraceWriter::new(Vec::new(), &table, spec.tasks.len() as u32)?;
    let mut cursors = vec![0usize; streams.len()];
    let mut cycle = 0u64;
    for _ in 0..spec.total_accesses() {
        // Proportional interleave: issue the task with the smallest
        // (issued + 1) / budget fraction, compared exactly via cross
        // multiplication; ties resolve to the lowest task index.
        let mut next = usize::MAX;
        for (t, stream) in streams.iter().enumerate() {
            if cursors[t] >= stream.len() {
                continue;
            }
            if next == usize::MAX {
                next = t;
                continue;
            }
            let lhs = (cursors[t] as u128 + 1) * streams[next].len() as u128;
            let rhs = (cursors[next] as u128 + 1) * stream.len() as u128;
            if lhs < rhs {
                next = t;
            }
        }
        writer.record(next as u32, cycle, &streams[next][cursors[next]]);
        cursors[next] += 1;
        cycle += spec.cycles_per_access;
    }
    let (bytes, _) = writer.finish()?;
    Ok(EncodedTrace::from_bytes(bytes)?)
}

/// Returns the fraction of accesses of the given kind in `accesses`.
pub fn kind_fraction(accesses: &[Access], kind: AccessKind) -> f64 {
    if accesses.is_empty() {
        return 0.0;
    }
    let n = accesses.iter().filter(|a| a.kind == kind).count();
    n as f64 / accesses.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LINE_SIZE_BYTES;

    fn params() -> StreamParams {
        StreamParams {
            task: TaskId::new(0),
            region: RegionId::new(0),
            base: Addr::new(0x1000),
            access_size: 4,
        }
    }

    #[test]
    fn strided_advances_by_stride() {
        let s = strided(params(), 64, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].addr, Addr::new(0x1000));
        assert_eq!(s[3].addr, Addr::new(0x1000 + 3 * 64));
    }

    #[test]
    fn looping_repeats_the_working_set() {
        let s = looping(params(), 256, 64, 3);
        assert_eq!(s.len(), 4 * 3);
        assert_eq!(s[0].addr, s[4].addr);
        assert_eq!(s[3].addr, s[11].addr);
    }

    #[test]
    fn random_stream_is_deterministic_and_bounded() {
        let a = random_in_working_set(params(), 4096, 100, 7);
        let b = random_in_working_set(params(), 4096, 100, 7);
        assert_eq!(a, b);
        for acc in &a {
            assert!(acc.addr >= Addr::new(0x1000));
            assert!(acc.addr < Addr::new(0x1000 + 4096));
            assert_eq!(acc.addr.value() % LINE_SIZE_BYTES, 0x1000 % LINE_SIZE_BYTES);
        }
        let c = random_in_working_set(params(), 4096, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn rmw_alternates_load_store() {
        let s = read_modify_write(params(), 8, 3);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0].kind, AccessKind::Load);
        assert_eq!(s[1].kind, AccessKind::Store);
        assert_eq!(s[0].addr, s[1].addr);
    }

    #[test]
    fn instruction_stream_wraps_over_footprint() {
        let s = instruction_stream(params(), 2 * LINE_SIZE_BYTES, 64, 16);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].addr, s[2].addr);
        assert_eq!(s[1].addr, s[3].addr);
        assert!(s.iter().all(|a| a.kind == AccessKind::InstrFetch));
    }

    #[test]
    fn interleave_preserves_all_accesses() {
        let a = strided(params(), 64, 3);
        let b = strided(params(), 64, 5);
        let merged = interleave(vec![a.clone(), b.clone()]);
        assert_eq!(merged.len(), 8);
        assert_eq!(merged[0], a[0]);
        assert_eq!(merged[1], b[0]);
        assert_eq!(merged[7], b[4]);
    }

    #[test]
    fn kind_fraction_counts() {
        let s = read_modify_write(params(), 8, 10);
        assert!((kind_fraction(&s, AccessKind::Load) - 0.5).abs() < 1e-9);
        assert!((kind_fraction(&s, AccessKind::Store) - 0.5).abs() < 1e-9);
        assert_eq!(kind_fraction(&[], AccessKind::Load), 0.0);
    }

    fn zoo_kinds() -> [GenKind; 4] {
        [
            GenKind::Zipf {
                working_set_bytes: 8 * 1024,
            },
            GenKind::Scan {
                footprint_bytes: 16 * 1024,
            },
            GenKind::Chase {
                working_set_bytes: 8 * 1024,
            },
            GenKind::Phased {
                hot_bytes: 2 * 1024,
                scan_bytes: 16 * 1024,
                phase_accesses: 100,
            },
        ]
    }

    #[test]
    fn zoo_families_are_deterministic_per_seed() {
        for kind in zoo_kinds() {
            let spec = GenSpec::single(kind, 42, 1000);
            let a = generate(&spec).unwrap();
            let b = generate(&spec).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "{kind:?} is not deterministic");
            assert_eq!(a.content_hash(), b.content_hash());
            assert_eq!(a.summary().accesses, 1000);
            if kind.is_seeded() {
                let other = generate(&GenSpec::single(kind, 43, 1000)).unwrap();
                assert_ne!(a.bytes(), other.bytes(), "{kind:?} ignores its seed");
            }
        }
    }

    #[test]
    fn zoo_streams_stay_inside_their_region() {
        for kind in zoo_kinds() {
            let trace = generate(&GenSpec::single(kind, 7, 500)).unwrap();
            let region = &trace.table().regions()[0];
            for run in trace.runs() {
                for access in &run.accesses {
                    assert!(access.addr >= region.base);
                    assert!(access.addr < region.base.offset(region.size));
                }
            }
        }
    }

    #[test]
    fn zoo_mix_interleaves_proportionally() {
        let spec = GenSpec::mix(
            vec![
                GenTask {
                    kind: GenKind::Chase {
                        working_set_bytes: 4 * 1024,
                    },
                    accesses: 1000,
                },
                GenTask {
                    kind: GenKind::Scan {
                        footprint_bytes: 32 * 1024,
                    },
                    accesses: 4000,
                },
            ],
            9,
        );
        let trace = generate(&spec).unwrap();
        assert_eq!(trace.summary().accesses, 5000);
        assert_eq!(trace.processors(), 2);
        // The 1:4 budget ratio must hold at every point, not just in
        // aggregate: after any 50-access window the victim has issued
        // 10 ± 1 of them.
        let issuers: Vec<u32> = trace
            .runs()
            .iter()
            .flat_map(|run| std::iter::repeat_n(run.processor, run.accesses.len()))
            .collect();
        for window in issuers.chunks(50) {
            let t0 = window.iter().filter(|&&p| p == 0).count();
            assert!((9..=11).contains(&t0), "unbalanced window: {t0}/50 from t0");
        }
    }

    #[test]
    fn zoo_provenance_round_trips_through_region_names() {
        let tasks = vec![
            GenTask {
                kind: GenKind::Zipf {
                    working_set_bytes: 24 * 1024,
                },
                accesses: 300,
            },
            GenTask {
                kind: GenKind::Phased {
                    hot_bytes: 8 * 1024,
                    scan_bytes: 128 * 1024,
                    phase_accesses: 2048,
                },
                accesses: 200,
            },
        ];
        let spec = GenSpec::mix(tasks.clone(), 77);
        let trace = generate(&spec).unwrap();
        let parsed = provenance(trace.table());
        assert_eq!(parsed.len(), tasks.len());
        for (i, (p, task)) in parsed.iter().zip(&tasks).enumerate() {
            assert_eq!(p.task_index, i as u32);
            assert_eq!(p.kind, task.kind);
            assert_eq!(p.accesses, task.accesses);
            assert_eq!(p.seed, 77);
        }
        // Recorded (non-generated) names parse as no provenance.
        assert_eq!(parse_region_name("idct.coeffs"), None);
        assert_eq!(parse_region_name("gen.zipf.bogus"), None);
    }

    #[test]
    fn zoo_rejects_malformed_specs() {
        let zipf = GenKind::Zipf {
            working_set_bytes: 1024,
        };
        let cases = [
            GenSpec::mix(vec![], 1),
            GenSpec::single(zipf, 1, 0),
            GenSpec::single(GenKind::Scan { footprint_bytes: 0 }, 1, 10),
            GenSpec::single(
                GenKind::Phased {
                    hot_bytes: 1024,
                    scan_bytes: 1024,
                    phase_accesses: 0,
                },
                1,
                10,
            ),
            GenSpec {
                cycles_per_access: 0,
                ..GenSpec::single(zipf, 1, 10)
            },
        ];
        for spec in cases {
            assert!(
                matches!(generate(&spec), Err(GenError::InvalidSpec { .. })),
                "{spec:?} was not rejected"
            );
        }
    }

    #[test]
    fn zoo_cycles_are_uniform_and_nondecreasing() {
        let spec = GenSpec::single(
            GenKind::Scan {
                footprint_bytes: 4096,
            },
            3,
            100,
        );
        let trace = generate(&spec).unwrap();
        let mut last = None;
        for run in trace.runs() {
            if let Some(prev) = last {
                assert!(run.start_cycle >= prev);
            }
            last = Some(run.start_cycle);
        }
    }
}
