//! Error type of the trace crate.

use std::error::Error;
use std::fmt;

use crate::addr::Addr;

/// Errors produced while building address spaces and traces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A region of zero bytes was requested.
    EmptyRegion {
        /// Name of the offending region.
        name: String,
    },
    /// A region name was used twice in the same table.
    DuplicateRegionName {
        /// The duplicated name.
        name: String,
    },
    /// An access fell outside every allocated region.
    UnmappedAddress {
        /// The offending address.
        addr: Addr,
    },
    /// An array index exceeded the bounds of its region.
    IndexOutOfBounds {
        /// Name of the region being accessed.
        region: String,
        /// Requested element index.
        index: usize,
        /// Number of elements in the region.
        len: usize,
    },
    /// A region id did not belong to the address space it was used with.
    UnknownRegion {
        /// The offending region index.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::EmptyRegion { name } => {
                write!(f, "region `{name}` has zero size")
            }
            TraceError::DuplicateRegionName { name } => {
                write!(f, "region name `{name}` is already in use")
            }
            TraceError::UnmappedAddress { addr } => {
                write!(f, "address {addr} is not mapped by any region")
            }
            TraceError::IndexOutOfBounds { region, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for region `{region}` of {len} elements"
                )
            }
            TraceError::UnknownRegion { index } => {
                write!(f, "region id {index} does not belong to this address space")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = TraceError::EmptyRegion {
            name: "x".to_string(),
        };
        assert_eq!(e.to_string(), "region `x` has zero size");
        let e = TraceError::UnmappedAddress {
            addr: Addr::new(0x40),
        };
        assert!(e.to_string().contains("0x40"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
