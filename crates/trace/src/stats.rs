//! Footprint and reuse-distance analysis of access traces.
//!
//! The paper's optimiser needs, for every task, the number of misses as a
//! function of allocated cache size. The full reproduction measures that by
//! simulation (crate `compmem`), but the analytic quantities here — unique
//! line footprint and the reuse-distance histogram — are useful both for
//! sanity-checking the workloads (does a task's working set have the size we
//! claim?) and for the stack-distance-based miss estimate used in tests as an
//! independent cross-check of the cache model.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::access::Access;
use crate::addr::LineAddr;
use crate::region::RegionId;

/// Summary statistics of an access trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of accesses.
    pub accesses: u64,
    /// Number of distinct cache lines touched.
    pub unique_lines: u64,
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
    /// Number of instruction fetches.
    pub instr_fetches: u64,
    /// Footprint in bytes (unique lines times the line size).
    pub footprint_bytes: u64,
}

impl TraceStats {
    /// Computes summary statistics over `accesses`.
    pub fn from_accesses(accesses: &[Access]) -> Self {
        let mut lines = HashMap::new();
        let mut stats = TraceStats {
            accesses: accesses.len() as u64,
            ..TraceStats::default()
        };
        for a in accesses {
            match a.kind {
                crate::AccessKind::Load => stats.loads += 1,
                crate::AccessKind::Store => stats.stores += 1,
                crate::AccessKind::InstrFetch => stats.instr_fetches += 1,
            }
            lines.entry(a.addr.line()).or_insert(0u64);
        }
        stats.unique_lines = lines.len() as u64;
        stats.footprint_bytes = stats.unique_lines * crate::LINE_SIZE_BYTES;
        stats
    }

    /// Computes per-region summary statistics over `accesses`.
    pub fn per_region(accesses: &[Access]) -> BTreeMap<RegionId, TraceStats> {
        let mut grouped: BTreeMap<RegionId, Vec<Access>> = BTreeMap::new();
        for &a in accesses {
            grouped.entry(a.region).or_default().push(a);
        }
        grouped
            .into_iter()
            .map(|(region, v)| (region, TraceStats::from_accesses(&v)))
            .collect()
    }
}

/// Histogram of LRU stack (reuse) distances at cache-line granularity.
///
/// Entry `d` counts references whose previous use of the same line had
/// exactly `d` distinct other lines referenced in between; cold references
/// are counted separately. For a fully-associative LRU cache of `c` lines the
/// number of misses equals the cold references plus all references with
/// distance `>= c` — the classic stack-distance identity used as an oracle in
/// the cache-model tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseDistanceHistogram {
    /// `histogram[d]` = number of references with stack distance `d`.
    pub histogram: BTreeMap<u64, u64>,
    /// References to lines never seen before.
    pub cold: u64,
}

impl ReuseDistanceHistogram {
    /// Computes the reuse-distance histogram of `accesses`.
    ///
    /// Uses the straightforward O(n·u) stack simulation (u = unique lines),
    /// which is plenty for the trace sizes used in tests.
    pub fn from_accesses(accesses: &[Access]) -> Self {
        let mut stack: Vec<LineAddr> = Vec::new();
        let mut hist = ReuseDistanceHistogram::default();
        for a in accesses {
            let line = a.addr.line();
            match stack.iter().rposition(|&l| l == line) {
                None => {
                    hist.cold += 1;
                    stack.push(line);
                }
                Some(pos) => {
                    let distance = (stack.len() - 1 - pos) as u64;
                    *hist.histogram.entry(distance).or_insert(0) += 1;
                    stack.remove(pos);
                    stack.push(line);
                }
            }
        }
        hist
    }

    /// Number of misses a fully-associative LRU cache with `capacity_lines`
    /// lines would incur on the analysed trace.
    pub fn lru_misses(&self, capacity_lines: u64) -> u64 {
        let far: u64 = self
            .histogram
            .iter()
            .filter(|(&d, _)| d >= capacity_lines)
            .map(|(_, &n)| n)
            .sum();
        self.cold + far
    }

    /// Total number of references analysed.
    pub fn total(&self) -> u64 {
        self.cold + self.histogram.values().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{looping, strided, StreamParams};
    use crate::{Addr, TaskId};

    fn params() -> StreamParams {
        StreamParams {
            task: TaskId::new(0),
            region: RegionId::new(0),
            base: Addr::new(0),
            access_size: 4,
        }
    }

    #[test]
    fn stats_count_kinds_and_lines() {
        let s = strided(params(), 64, 10);
        let st = TraceStats::from_accesses(&s);
        assert_eq!(st.accesses, 10);
        assert_eq!(st.loads, 10);
        assert_eq!(st.unique_lines, 10);
        assert_eq!(st.footprint_bytes, 640);
    }

    #[test]
    fn stats_spatial_reuse_has_fewer_lines() {
        let s = strided(params(), 4, 32);
        let st = TraceStats::from_accesses(&s);
        assert_eq!(st.accesses, 32);
        assert_eq!(st.unique_lines, 2);
    }

    #[test]
    fn per_region_groups() {
        let mut s = strided(params(), 64, 4);
        let mut p2 = params();
        p2.region = RegionId::new(1);
        p2.base = Addr::new(0x10000);
        s.extend(strided(p2, 64, 6));
        let per = TraceStats::per_region(&s);
        assert_eq!(per.len(), 2);
        assert_eq!(per[&RegionId::new(0)].accesses, 4);
        assert_eq!(per[&RegionId::new(1)].accesses, 6);
    }

    #[test]
    fn reuse_distance_of_looping_stream() {
        // Working set of 8 lines, swept 3 times: first pass cold, later
        // passes all at distance 7.
        let s = looping(params(), 512, 64, 3);
        let h = ReuseDistanceHistogram::from_accesses(&s);
        assert_eq!(h.cold, 8);
        assert_eq!(h.histogram[&7], 16);
        assert_eq!(h.total(), 24);
        // A cache of 8 lines captures the reuse; 7 lines does not.
        assert_eq!(h.lru_misses(8), 8);
        assert_eq!(h.lru_misses(7), 24);
    }

    #[test]
    fn reuse_distance_zero_for_immediate_reuse() {
        let p = params();
        let mut s = strided(p, 0, 1);
        s.extend(strided(p, 0, 1));
        let h = ReuseDistanceHistogram::from_accesses(&s);
        assert_eq!(h.cold, 1);
        assert_eq!(h.histogram[&0], 1);
        assert_eq!(h.lru_misses(1), 1);
    }
}
