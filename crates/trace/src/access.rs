//! Individual memory references.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::region::{RegionId, TaskId};

/// The kind of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch (read of the task's code region).
    InstrFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// Returns `true` for loads and instruction fetches.
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::InstrFetch)
    }

    /// Returns `true` for stores.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// Returns `true` for instruction fetches.
    pub const fn is_instruction(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstrFetch => "ifetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        f.write_str(s)
    }
}

/// One memory reference issued by a task.
///
/// An access carries the issuing task and the region the address belongs to,
/// so that the cache models can account misses per task and per
/// communication buffer exactly as the paper's Figure 2 does, and so the
/// partitioned L2 can find the partition to index without a separate lookup
/// on the critical path of the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// Byte address referenced.
    pub addr: Addr,
    /// Kind of the reference.
    pub kind: AccessKind,
    /// Number of bytes referenced (1, 2, 4 or 8 for data, a line for code).
    pub size: u16,
    /// Task that issued the reference.
    pub task: TaskId,
    /// Region the address belongs to.
    pub region: RegionId,
}

impl Access {
    /// Creates a data load access.
    pub const fn load(addr: Addr, size: u16, task: TaskId, region: RegionId) -> Self {
        Access {
            addr,
            kind: AccessKind::Load,
            size,
            task,
            region,
        }
    }

    /// Creates a data store access.
    pub const fn store(addr: Addr, size: u16, task: TaskId, region: RegionId) -> Self {
        Access {
            addr,
            kind: AccessKind::Store,
            size,
            task,
            region,
        }
    }

    /// Creates an instruction-fetch access.
    pub const fn ifetch(addr: Addr, size: u16, task: TaskId, region: RegionId) -> Self {
        Access {
            addr,
            kind: AccessKind::InstrFetch,
            size,
            task,
            region,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}B by {} in {}",
            self.kind, self.addr, self.size, self.task, self.region
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Load.is_read());
        assert!(AccessKind::InstrFetch.is_read());
        assert!(!AccessKind::Store.is_read());
        assert!(AccessKind::Store.is_write());
        assert!(AccessKind::InstrFetch.is_instruction());
        assert!(!AccessKind::Load.is_instruction());
    }

    #[test]
    fn constructors_set_kind() {
        let t = TaskId::new(1);
        let r = RegionId::new(2);
        assert_eq!(Access::load(Addr::new(8), 4, t, r).kind, AccessKind::Load);
        assert_eq!(Access::store(Addr::new(8), 4, t, r).kind, AccessKind::Store);
        assert_eq!(
            Access::ifetch(Addr::new(8), 64, t, r).kind,
            AccessKind::InstrFetch
        );
    }

    #[test]
    fn display_mentions_task_and_region() {
        let a = Access::store(Addr::new(0x100), 4, TaskId::new(3), RegionId::new(7));
        let s = a.to_string();
        assert!(s.contains("store"));
        assert!(s.contains("T3"));
        assert!(s.contains("R7"));
    }
}
