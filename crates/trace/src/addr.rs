//! Byte and cache-line addresses of the simulated linear address space.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Cache-line size used throughout the platform, in bytes.
///
/// The CAKE instance modelled in the paper uses 64-byte lines in both cache
/// levels; the value is a crate-wide constant because the region allocator
/// aligns every region to a line boundary so that no line is shared between
/// two regions (a prerequisite for exclusive set allocation).
pub const LINE_SIZE_BYTES: u64 = 64;

/// A byte address in the flat, linear address space of the simulated
/// platform.
///
/// Addresses are plain 64-bit values; the newtype prevents accidentally
/// mixing them with sizes, counts or set indices.
///
/// ```
/// use compmem_trace::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!(a.offset(64).value(), 0x1040);
/// assert_eq!(a.line().value(), 0x40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from its raw byte value.
    pub const fn new(value: u64) -> Self {
        Addr(value)
    }

    /// Returns the raw byte value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addition overflows `u64`.
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// Returns the cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_SIZE_BYTES)
    }

    /// Returns the byte offset of this address inside its cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 % LINE_SIZE_BYTES
    }

    /// Returns this address rounded down to its line boundary.
    pub const fn line_base(self) -> Addr {
        Addr(self.0 - self.0 % LINE_SIZE_BYTES)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(value: u64) -> Self {
        Addr(value)
    }
}

impl From<Addr> for u64 {
    fn from(value: Addr) -> Self {
        value.0
    }
}

/// A cache-line-granular address (byte address divided by [`LINE_SIZE_BYTES`]).
///
/// Caches operate on line addresses: the tag/index split is computed from the
/// line number, never from the byte offset inside a line.
///
/// ```
/// use compmem_trace::{Addr, LineAddr};
/// assert_eq!(Addr::new(130).line(), LineAddr::new(2));
/// assert_eq!(LineAddr::new(2).first_byte(), Addr::new(128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(line_number: u64) -> Self {
        LineAddr(line_number)
    }

    /// Returns the raw line number.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of the line.
    pub const fn first_byte(self) -> Addr {
        Addr(self.0 * LINE_SIZE_BYTES)
    }

    /// Returns the line advanced by `lines`.
    pub const fn offset(self, lines: u64) -> Self {
        LineAddr(self.0 + lines)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(value: u64) -> Self {
        LineAddr(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_address_divides_by_line_size() {
        assert_eq!(Addr::new(0).line(), LineAddr::new(0));
        assert_eq!(Addr::new(63).line(), LineAddr::new(0));
        assert_eq!(Addr::new(64).line(), LineAddr::new(1));
        assert_eq!(Addr::new(6400).line(), LineAddr::new(100));
    }

    #[test]
    fn line_offset_and_base_are_consistent() {
        let a = Addr::new(0x1234);
        assert_eq!(a.line_base().value() + a.line_offset(), a.value());
        assert_eq!(a.line_base().line_offset(), 0);
    }

    #[test]
    fn offset_advances_bytes() {
        assert_eq!(Addr::new(10).offset(54), Addr::new(64));
        assert_eq!(LineAddr::new(3).offset(2), LineAddr::new(5));
    }

    #[test]
    fn conversions_roundtrip() {
        let a = Addr::from(12345u64);
        assert_eq!(u64::from(a), 12345);
        assert_eq!(LineAddr::new(7).first_byte().line(), LineAddr::new(7));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(LineAddr::new(16).to_string(), "line 0x10");
    }
}
