//! Destinations for generated memory accesses.

use serde::{Deserialize, Serialize};

use crate::access::Access;

/// A destination for memory accesses produced by instrumented workloads.
///
/// The workloads of the reproduction are functional Rust implementations of
/// the paper's task graphs; every element they touch in an instrumented
/// [`AddressSpace`](crate::AddressSpace) is reported to an `AccessSink`. The
/// platform simulator implements this trait to feed accesses straight into
/// the memory hierarchy; [`TraceBuffer`] implements it to record them for
/// offline analysis.
pub trait AccessSink {
    /// Records one access.
    fn record(&mut self, access: Access);

    /// Records a whole batch of accesses. The default forwards to
    /// [`record`](AccessSink::record) one by one.
    fn record_all(&mut self, accesses: &[Access]) {
        for &a in accesses {
            self.record(a);
        }
    }
}

/// A sink that discards every access (useful to run workloads functionally).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl NullSink {
    /// Creates a new discarding sink.
    pub const fn new() -> Self {
        NullSink
    }
}

impl AccessSink for NullSink {
    fn record(&mut self, _access: Access) {}
}

/// A sink that only counts accesses by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountingSink {
    /// Number of instruction fetches recorded.
    pub instr_fetches: u64,
    /// Number of loads recorded.
    pub loads: u64,
    /// Number of stores recorded.
    pub stores: u64,
}

impl CountingSink {
    /// Creates a new counting sink with all counters at zero.
    pub const fn new() -> Self {
        CountingSink {
            instr_fetches: 0,
            loads: 0,
            stores: 0,
        }
    }

    /// Total number of recorded accesses.
    pub const fn total(&self) -> u64 {
        self.instr_fetches + self.loads + self.stores
    }
}

impl AccessSink for CountingSink {
    fn record(&mut self, access: Access) {
        match access.kind {
            crate::AccessKind::InstrFetch => self.instr_fetches += 1,
            crate::AccessKind::Load => self.loads += 1,
            crate::AccessKind::Store => self.stores += 1,
        }
    }
}

/// An in-memory trace: the simplest [`AccessSink`], storing every access.
///
/// ```
/// use compmem_trace::{Access, AccessSink, Addr, RegionId, TaskId, TraceBuffer};
/// let mut buf = TraceBuffer::new();
/// buf.record(Access::load(Addr::new(64), 4, TaskId::new(0), RegionId::new(0)));
/// assert_eq!(buf.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceBuffer {
    accesses: Vec<Access>,
}

impl TraceBuffer {
    /// Creates an empty trace buffer.
    pub fn new() -> Self {
        TraceBuffer {
            accesses: Vec::new(),
        }
    }

    /// Creates an empty trace buffer with capacity for `n` accesses.
    pub fn with_capacity(n: usize) -> Self {
        TraceBuffer {
            accesses: Vec::with_capacity(n),
        }
    }

    /// Returns the recorded accesses in program order.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Removes all recorded accesses, keeping the allocation.
    pub fn clear(&mut self) {
        self.accesses.clear();
    }

    /// Consumes the buffer and returns the recorded accesses.
    pub fn into_accesses(self) -> Vec<Access> {
        self.accesses
    }

    /// Returns an iterator over the recorded accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, Access> {
        self.accesses.iter()
    }

    /// Appends all accesses of `other` to this buffer.
    pub fn append(&mut self, other: &mut TraceBuffer) {
        self.accesses.append(&mut other.accesses);
    }

    /// Drains the recorded accesses, leaving the buffer empty.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Access> {
        self.accesses.drain(..)
    }
}

impl AccessSink for TraceBuffer {
    fn record(&mut self, access: Access) {
        self.accesses.push(access);
    }

    fn record_all(&mut self, accesses: &[Access]) {
        self.accesses.extend_from_slice(accesses);
    }
}

impl FromIterator<Access> for TraceBuffer {
    fn from_iter<I: IntoIterator<Item = Access>>(iter: I) -> Self {
        TraceBuffer {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<Access> for TraceBuffer {
    fn extend<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a TraceBuffer {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for TraceBuffer {
    type Item = Access;
    type IntoIter = std::vec::IntoIter<Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

/// Forward implementation so `&mut S` can be passed where a sink is expected.
impl<S: AccessSink + ?Sized> AccessSink for &mut S {
    fn record(&mut self, access: Access) {
        (**self).record(access);
    }

    fn record_all(&mut self, accesses: &[Access]) {
        (**self).record_all(accesses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, RegionId, TaskId};

    fn access(n: u64) -> Access {
        Access::load(Addr::new(n * 64), 4, TaskId::new(0), RegionId::new(0))
    }

    #[test]
    fn trace_buffer_records_in_order() {
        let mut buf = TraceBuffer::new();
        buf.record(access(1));
        buf.record(access(2));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.accesses()[0].addr, Addr::new(64));
        assert_eq!(buf.accesses()[1].addr, Addr::new(128));
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut sink = CountingSink::new();
        sink.record(access(0));
        sink.record(Access::store(
            Addr::new(0x80),
            4,
            TaskId::new(0),
            RegionId::new(0),
        ));
        sink.record(Access::ifetch(
            Addr::new(0x100),
            64,
            TaskId::new(0),
            RegionId::new(1),
        ));
        assert_eq!(sink.loads, 1);
        assert_eq!(sink.stores, 1);
        assert_eq!(sink.instr_fetches, 1);
        assert_eq!(sink.total(), 3);
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink::new();
        sink.record(access(0));
        // Nothing observable; just make sure it is callable through &mut.
        let by_ref: &mut dyn AccessSink = &mut sink;
        by_ref.record(access(1));
    }

    #[test]
    fn collect_and_extend() {
        let buf: TraceBuffer = (0..5).map(access).collect();
        assert_eq!(buf.len(), 5);
        let mut buf2 = TraceBuffer::new();
        buf2.extend(buf.iter().copied());
        assert_eq!(buf2.len(), 5);
        assert_eq!(buf2, buf);
    }

    #[test]
    fn record_all_extends() {
        let mut buf = TraceBuffer::with_capacity(4);
        buf.record_all(&[access(0), access(1)]);
        assert_eq!(buf.len(), 2);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn mutable_reference_is_a_sink() {
        fn use_sink<S: AccessSink>(mut s: S) {
            s.record(access(9));
        }
        let mut buf = TraceBuffer::new();
        use_sink(&mut buf);
        assert_eq!(buf.len(), 1);
    }
}
