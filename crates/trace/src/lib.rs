//! Memory-access trace primitives for the `compmem` compositional memory
//! system.
//!
//! This crate is the lowest layer of the reproduction of *"Compositional
//! memory systems for multimedia communicating tasks"* (Molnos et al.,
//! DATE 2005). Everything above it — cache models, the multiprocessor
//! platform, the Kahn-process-network runtime and the workloads — speaks in
//! terms of the types defined here:
//!
//! * [`Addr`] — a byte address in the flat, linear address space of the
//!   simulated platform.
//! * [`RegionId`] / [`RegionKind`] / [`RegionTable`] — the "memory-active
//!   entities" of the paper: task code/data/bss/heap, FIFOs, frame buffers
//!   and the shared application / run-time-system sections. The partitioned
//!   L2 cache keys its index-translation table on the region an address
//!   belongs to.
//! * [`Access`] — one memory reference (instruction fetch, load or store)
//!   attributed to a task and a region.
//! * [`AccessSink`] / [`TraceBuffer`] — how instrumented workloads emit and
//!   collect references. Sinks accept whole batches through
//!   [`AccessSink::record_all`], which the platform's burst path preserves
//!   end-to-end.
//! * [`codec`] — the binary trace IR for record/replay: delta-encoded
//!   addresses, varint cycle gaps and per-task/region dictionaries behind
//!   streaming [`TraceWriter`]/[`TraceReader`] codecs and the in-memory
//!   [`EncodedTrace`]. A recorded trace embeds its region table, so it is a
//!   self-contained scenario for organisation sweeps (see the `compmem`
//!   CLI: `compmem record` / `compmem replay` / `compmem sweep`).
//! * [`curves`] — the binary **curve sidecar** IR: miss-rate curves
//!   persisted in a `.curves` file next to the trace they were measured
//!   over, keyed by a content hash of the trace bytes so stale or foreign
//!   sidecars are rejected ([`CodecError`], never a panic). `compmem
//!   profile` uses it to skip the L1 filter pass on re-invocation.
//! * [`gen`] — synthetic access-stream generators and the **workload
//!   zoo**: deterministic, seed-parameterised scenario generation
//!   ([`GenSpec`] → [`gen::generate`]) whose multi-program mixes drive
//!   every layer above through standard encoded traces (`compmem gen`).
//! * [`stats`] — footprint and reuse-distance analysis of traces.
//!
//! (The workspace-level architecture guide — layers, dataflow, the
//! one-pass profiling invariant — lives in `docs/ARCHITECTURE.md`; the
//! CLI walkthrough in `docs/CLI.md`.)
//!
//! # Example
//!
//! ```
//! use compmem_trace::{AddressSpace, AccessKind, RegionKind, TaskId, TraceBuffer};
//!
//! # fn main() -> Result<(), compmem_trace::TraceError> {
//! let mut space = AddressSpace::new();
//! let task = TaskId::new(0);
//! let region = space.allocate_region("idct.coeffs", RegionKind::TaskData { task }, 4096)?;
//! let mut sink = TraceBuffer::new();
//! let mut array = space.array(region)?;
//! array.write(&mut sink, task, 10, 42);
//! let v = array.read(&mut sink, task, 10);
//! assert_eq!(v, 42);
//! assert_eq!(sink.len(), 2);
//! assert_eq!(sink.accesses()[1].kind, AccessKind::Load);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
pub mod codec;
pub mod curves;
mod error;
pub mod gen;
mod memspace;
mod region;
mod sink;
pub mod stats;

pub use access::{Access, AccessKind};
pub use addr::{Addr, LineAddr, LINE_SIZE_BYTES};
pub use codec::{
    write_file_atomic, CodecError, EncodedTrace, SegmentEntry, TraceReader, TraceRecord, TraceRun,
    TraceSummary, TraceWriter, DEFAULT_SEGMENT_ACCESSES,
};
pub use curves::{
    trace_content_hash, CurveEntry, CurveHeader, CurveReader, CurveWriter, EncodedCurves,
    SidecarKey, SidecarWindow, SidecarWindowKind, WindowRecord,
};
pub use error::TraceError;
pub use gen::{GenError, GenKind, GenProvenance, GenSpec, GenTask, DEFAULT_CYCLES_PER_ACCESS};
pub use memspace::{AddressSpace, ScalarArray};
pub use region::{BufferId, Region, RegionId, RegionKind, RegionTable, TaskId};
pub use sink::{AccessSink, CountingSink, NullSink, TraceBuffer};
