//! The binary **curve sidecar** IR: persisted miss-rate curves next to a
//! trace.
//!
//! Profiling a recorded trace pays a full L1-filter simulation before the
//! stack-distance profiler sees a single access. The measured curves are a
//! pure function of the trace bytes and the profiling configuration, so
//! they can be persisted once and reloaded on every later invocation —
//! `compmem profile` writes a `.curves` file next to the `.trace` and
//! skips the L1 filter entirely when a matching sidecar exists.
//!
//! This module defines the on-disk format and the streaming
//! [`CurveWriter`] / [`CurveReader`] pair, symmetrical to the trace codec
//! in [`crate::codec`]. It deliberately speaks a *neutral* data model
//! ([`SidecarKey`], [`CurveEntry`], [`WindowRecord`]): the semantic curve
//! types (`MissRateCurves`, `WindowedCurves`) live one layer up in
//! `compmem-cache`, which provides lossless conversions in both
//! directions.
//!
//! # IR layout
//!
//! A sidecar is one byte stream:
//!
//! ```text
//! header  := magic "CMCV" | version u8 (=1) | trace_hash u64 (little endian)
//!          | l1_signature u64 (little endian)
//!          | varint min_sets | varint max_sets | varint ways_cap
//!          | window kind u8 (0 = whole-run, 1 = accesses, 2 = cycles)
//!          | varint window_length
//! body    := { WINDOW (0x01) varint index | varint start_cycle
//!              | varint end_cycle | varint entry_count | entry* }*
//!            TOTAL (0x02) varint entry_count | entry*
//! entry   := key tag u8 | [varint id] | varint accesses | varint cold
//!          | varint bucket * (levels * (ways_cap + 1))
//! END     := 0x00
//! ```
//!
//! `trace_hash` is the [`trace_content_hash`] of the **encoded trace
//! bytes** the curves were measured over; a sidecar whose hash does not
//! match the trace it sits next to is rejected with
//! [`CodecError::SidecarMismatch`] — reusing curves measured over
//! different traffic would silently corrupt every downstream allocation.
//! `l1_signature` identifies the **L1 filter configuration** the curves
//! were measured behind (the L2-bound stream is a function of the trace
//! *and* the private L1s — a different L1 geometry yields different
//! curves from the same trace), and the resolution triple and the window
//! configuration are embedded for the same reason. `levels` is `log2(max_sets) - log2(min_sets) + 1`;
//! every entry carries one `ways_cap + 1`-bucket distance histogram per
//! level, exactly the in-memory layout of a `MissRateCurve`.
//!
//! Decoding is strict: every branch is bounds-checked and corrupt input is
//! reported as a [`CodecError`], never a panic.

use std::io::{Read, Write};
use std::path::Path;

use crate::codec::{write_varint, ByteSource, CodecError};
use crate::region::{BufferId, TaskId};

/// Magic bytes opening every curve sidecar.
pub const CURVES_MAGIC: [u8; 4] = *b"CMCV";
/// Current version of the curve sidecar IR.
pub const CURVES_VERSION: u8 = 1;

/// Conventional file extension of a curve sidecar (`trace.cmt` →
/// `trace.curves`).
pub const CURVES_EXTENSION: &str = "curves";

const TAG_END: u8 = 0x00;
const TAG_WINDOW: u8 = 0x01;
const TAG_TOTAL: u8 = 0x02;

/// Hard decode bounds: anything larger is corrupt rather than worth
/// allocating for.
const MAX_LEVELS: u32 = 64;
const MAX_WAYS_CAP: u64 = 4096;
const MAX_ENTRIES: u64 = 1 << 20;
const MAX_WINDOWS: u64 = 1 << 24;

/// FNV-1a hash of a byte stream — the content identity that ties a curve
/// sidecar to the exact trace bytes it was measured over.
///
/// ```
/// use compmem_trace::curves::trace_content_hash;
/// let a = trace_content_hash(b"CMTR...");
/// let b = trace_content_hash(b"CMTR..!");
/// assert_ne!(a, b);
/// assert_eq!(a, trace_content_hash(b"CMTR..."));
/// ```
pub fn trace_content_hash(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The sidecar path of a trace file: same location, `.curves` extension.
pub fn sidecar_path(trace_path: &Path) -> std::path::PathBuf {
    trace_path.with_extension(CURVES_EXTENSION)
}

/// How the profiling pass that produced a sidecar sliced the access
/// stream into windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SidecarWindowKind {
    /// One window covering the whole run (no slicing).
    WholeRun,
    /// Fixed number of L2-bound accesses per window.
    Accesses,
    /// Fixed number of cycles per window.
    Cycles,
}

/// The window configuration embedded in a sidecar header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SidecarWindow {
    /// How windows were delimited.
    pub kind: SidecarWindowKind,
    /// Window length in the kind's unit (0 for [`SidecarWindowKind::WholeRun`]).
    pub length: u64,
}

impl SidecarWindow {
    /// The whole-run (single window) configuration.
    pub fn whole_run() -> Self {
        SidecarWindow {
            kind: SidecarWindowKind::WholeRun,
            length: 0,
        }
    }
}

/// The entity a persisted curve belongs to — the neutral, trace-level
/// mirror of `compmem-cache`'s `PartitionKey`, plus the aggregate
/// whole-L2 curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SidecarKey {
    /// The aggregate curve over the whole L2-bound stream (every entity).
    Aggregate,
    /// All private regions of one task.
    Task(TaskId),
    /// One inter-task communication buffer.
    Buffer(BufferId),
    /// Application-wide initialised data.
    AppData,
    /// Application-wide zero-initialised data.
    AppBss,
    /// Run-time-system initialised data.
    RtData,
    /// Run-time-system zero-initialised data.
    RtBss,
}

fn key_tag(key: SidecarKey) -> (u8, Option<u64>) {
    match key {
        SidecarKey::Aggregate => (0, None),
        SidecarKey::Task(task) => (1, Some(task.index() as u64)),
        SidecarKey::Buffer(buffer) => (2, Some(buffer.index() as u64)),
        SidecarKey::AppData => (3, None),
        SidecarKey::AppBss => (4, None),
        SidecarKey::RtData => (5, None),
        SidecarKey::RtBss => (6, None),
    }
}

fn key_from_tag<R: Read>(tag: u8, r: &mut ByteSource<R>) -> Result<SidecarKey, CodecError> {
    let id = |r: &mut ByteSource<R>| -> Result<u32, CodecError> {
        u32::try_from(r.read_varint()?).map_err(|_| CodecError::Corrupt {
            reason: "curve key id exceeds 32 bits",
        })
    };
    Ok(match tag {
        0 => SidecarKey::Aggregate,
        1 => SidecarKey::Task(TaskId::new(id(r)?)),
        2 => SidecarKey::Buffer(BufferId::new(id(r)?)),
        3 => SidecarKey::AppData,
        4 => SidecarKey::AppBss,
        5 => SidecarKey::RtData,
        6 => SidecarKey::RtBss,
        _ => {
            return Err(CodecError::Corrupt {
                reason: "unknown curve key tag",
            })
        }
    })
}

/// The header of a curve sidecar: the identity of the trace and the
/// profiling configuration the curves were measured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurveHeader {
    /// [`trace_content_hash`] of the source trace's encoded bytes.
    pub trace_hash: u64,
    /// Opaque signature of the L1 filter configuration the curves were
    /// measured behind (computed by the profiling layer; 0 when the
    /// stream was fed to the profiler directly, with no L1 filter).
    pub l1_signature: u64,
    /// Smallest resolved set count (a power of two).
    pub min_sets: u32,
    /// Largest resolved set count (a power of two, `>= min_sets`).
    pub max_sets: u32,
    /// Largest resolved associativity.
    pub ways_cap: u32,
    /// How the pass sliced the stream into windows.
    pub window: SidecarWindow,
}

impl CurveHeader {
    /// Number of set-count levels each entry's histogram list must carry.
    pub fn levels(&self) -> usize {
        (self.max_sets.ilog2() - self.min_sets.ilog2() + 1) as usize
    }

    fn validate(&self) -> Result<(), CodecError> {
        if self.min_sets == 0
            || !self.min_sets.is_power_of_two()
            || self.max_sets == 0
            || !self.max_sets.is_power_of_two()
            || self.min_sets > self.max_sets
        {
            return Err(CodecError::Corrupt {
                reason: "curve resolution set counts are not ordered powers of two",
            });
        }
        if self.levels() > MAX_LEVELS as usize {
            return Err(CodecError::Corrupt {
                reason: "implausible curve level count",
            });
        }
        if self.ways_cap == 0 || u64::from(self.ways_cap) > MAX_WAYS_CAP {
            return Err(CodecError::Corrupt {
                reason: "implausible curve associativity cap",
            });
        }
        match self.window.kind {
            SidecarWindowKind::WholeRun => {
                if self.window.length != 0 {
                    return Err(CodecError::Corrupt {
                        reason: "whole-run window with a non-zero length",
                    });
                }
            }
            SidecarWindowKind::Accesses | SidecarWindowKind::Cycles => {
                if self.window.length == 0 {
                    return Err(CodecError::Corrupt {
                        reason: "zero-length profiling window",
                    });
                }
            }
        }
        Ok(())
    }
}

/// One persisted curve: a key's distance histograms at every resolved
/// level, plus its access and cold-miss counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurveEntry {
    /// Whose curve this is.
    pub key: SidecarKey,
    /// Accesses of the key during the (window's share of the) pass.
    pub accesses: u64,
    /// First-touch accesses (misses at every size).
    pub cold: u64,
    /// Per-level distance histograms, `ways_cap + 1` buckets each.
    pub level_histograms: Vec<Vec<u64>>,
}

/// One profiling window's worth of curves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRecord {
    /// Zero-based window index.
    pub index: u64,
    /// Cycle (or access ordinal) at which the window opened.
    pub start_cycle: u64,
    /// Cycle (or access ordinal) of the last access in the window.
    pub end_cycle: u64,
    /// The curves of every key active in the window, sorted by key.
    pub entries: Vec<CurveEntry>,
}

// ----- encoding -----

fn write_entry<W: Write>(
    w: &mut W,
    header: &CurveHeader,
    entry: &CurveEntry,
) -> Result<(), CodecError> {
    let (tag, id) = key_tag(entry.key);
    w.write_all(&[tag])?;
    if let Some(id) = id {
        write_varint(w, id)?;
    }
    write_varint(w, entry.accesses)?;
    write_varint(w, entry.cold)?;
    if entry.level_histograms.len() != header.levels()
        || entry
            .level_histograms
            .iter()
            .any(|h| h.len() != header.ways_cap as usize + 1)
    {
        return Err(CodecError::Corrupt {
            reason: "curve entry histogram shape disagrees with the header",
        });
    }
    for histogram in &entry.level_histograms {
        for &bucket in histogram {
            write_varint(w, bucket)?;
        }
    }
    Ok(())
}

/// Streaming encoder of the curve sidecar IR.
///
/// Symmetrical to [`TraceWriter`](crate::codec::TraceWriter): create it
/// with the header, stream the windows in order, and terminate with the
/// whole-run totals through [`finish`](CurveWriter::finish).
#[derive(Debug)]
pub struct CurveWriter<W: Write> {
    inner: W,
    header: CurveHeader,
    next_index: u64,
}

impl<W: Write> CurveWriter<W> {
    /// Starts a sidecar: validates the header and writes it to `inner`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] for an invalid header and I/O
    /// errors from the sink.
    pub fn new(mut inner: W, header: CurveHeader) -> Result<Self, CodecError> {
        header.validate()?;
        inner.write_all(&CURVES_MAGIC)?;
        inner.write_all(&[CURVES_VERSION])?;
        inner.write_all(&header.trace_hash.to_le_bytes())?;
        inner.write_all(&header.l1_signature.to_le_bytes())?;
        write_varint(&mut inner, u64::from(header.min_sets))?;
        write_varint(&mut inner, u64::from(header.max_sets))?;
        write_varint(&mut inner, u64::from(header.ways_cap))?;
        let kind = match header.window.kind {
            SidecarWindowKind::WholeRun => 0u8,
            SidecarWindowKind::Accesses => 1,
            SidecarWindowKind::Cycles => 2,
        };
        inner.write_all(&[kind])?;
        write_varint(&mut inner, header.window.length)?;
        Ok(CurveWriter {
            inner,
            header,
            next_index: 0,
        })
    }

    /// Writes one window's curves. Windows must be streamed in index
    /// order, starting at 0.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] for out-of-order windows or
    /// entries whose histogram shape disagrees with the header, and I/O
    /// errors from the sink.
    pub fn write_window(&mut self, window: &WindowRecord) -> Result<(), CodecError> {
        if window.index != self.next_index {
            return Err(CodecError::Corrupt {
                reason: "windows must be written in index order",
            });
        }
        self.next_index += 1;
        self.inner.write_all(&[TAG_WINDOW])?;
        write_varint(&mut self.inner, window.index)?;
        write_varint(&mut self.inner, window.start_cycle)?;
        write_varint(&mut self.inner, window.end_cycle)?;
        write_varint(&mut self.inner, window.entries.len() as u64)?;
        for entry in &window.entries {
            write_entry(&mut self.inner, &self.header, entry)?;
        }
        Ok(())
    }

    /// Writes the whole-run totals, terminates the stream and returns the
    /// sink.
    ///
    /// # Errors
    ///
    /// As for [`write_window`](CurveWriter::write_window).
    pub fn finish(mut self, total: &[CurveEntry]) -> Result<W, CodecError> {
        self.inner.write_all(&[TAG_TOTAL])?;
        write_varint(&mut self.inner, total.len() as u64)?;
        for entry in total {
            write_entry(&mut self.inner, &self.header, entry)?;
        }
        self.inner.write_all(&[TAG_END])?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

// ----- decoding -----

fn read_entry<R: Read>(
    r: &mut ByteSource<R>,
    header: &CurveHeader,
) -> Result<CurveEntry, CodecError> {
    let tag = r.require_byte()?;
    let key = key_from_tag(tag, r)?;
    let accesses = r.read_varint()?;
    let cold = r.read_varint()?;
    if cold > accesses {
        return Err(CodecError::Corrupt {
            reason: "curve entry counts more cold misses than accesses",
        });
    }
    let buckets = header.ways_cap as usize + 1;
    let mut level_histograms = Vec::with_capacity(header.levels());
    for _ in 0..header.levels() {
        let mut histogram = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            histogram.push(r.read_varint()?);
        }
        // Every non-cold access lands in exactly one bucket per level.
        // Sum in u128: corrupt buckets near u64::MAX must be rejected,
        // not wrapped into a coincidentally-valid total (or a debug
        // overflow panic).
        let total: u128 = histogram.iter().map(|&b| u128::from(b)).sum();
        if total != u128::from(accesses - cold) {
            return Err(CodecError::Corrupt {
                reason: "curve histogram does not sum to the warm access count",
            });
        }
        level_histograms.push(histogram);
    }
    Ok(CurveEntry {
        key,
        accesses,
        cold,
        level_histograms,
    })
}

fn read_entries<R: Read>(
    r: &mut ByteSource<R>,
    header: &CurveHeader,
) -> Result<Vec<CurveEntry>, CodecError> {
    let count = r.read_varint()?;
    if count > MAX_ENTRIES {
        return Err(CodecError::Corrupt {
            reason: "implausible curve entry count",
        });
    }
    let mut entries = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        entries.push(read_entry(r, header)?);
    }
    // Sorted, duplicate-free keys make the encoding canonical (and the
    // reuse path byte-reproducible).
    if entries.windows(2).any(|w| w[0].key >= w[1].key) {
        return Err(CodecError::Corrupt {
            reason: "curve entries are not strictly sorted by key",
        });
    }
    Ok(entries)
}

/// Streaming decoder of the curve sidecar IR.
#[derive(Debug)]
pub struct CurveReader<R: Read> {
    inner: ByteSource<R>,
    header: CurveHeader,
    next_index: u64,
    total: Option<Vec<CurveEntry>>,
    done: bool,
}

impl<R: Read> CurveReader<R> {
    /// Opens a sidecar: parses and validates the header.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for I/O failures, a wrong magic or
    /// version, or an invalid header.
    pub fn new(inner: R) -> Result<Self, CodecError> {
        let mut inner = ByteSource::new(inner);
        let mut magic = [0u8; 4];
        inner
            .read_exact(&mut magic)
            .map_err(|_| CodecError::Corrupt {
                reason: "stream shorter than the sidecar magic",
            })?;
        if magic != CURVES_MAGIC {
            return Err(CodecError::BadSidecarMagic { found: magic });
        }
        let version = inner.require_byte()?;
        if version != CURVES_VERSION {
            return Err(CodecError::UnsupportedVersion { found: version });
        }
        let mut hash = [0u8; 8];
        inner.read_exact(&mut hash)?;
        let mut l1_signature = [0u8; 8];
        inner.read_exact(&mut l1_signature)?;
        let as_u32 = |value: u64, reason: &'static str| {
            u32::try_from(value).map_err(|_| CodecError::Corrupt { reason })
        };
        let min_sets = as_u32(inner.read_varint()?, "curve min_sets exceeds 32 bits")?;
        let max_sets = as_u32(inner.read_varint()?, "curve max_sets exceeds 32 bits")?;
        let ways_cap = as_u32(inner.read_varint()?, "curve ways_cap exceeds 32 bits")?;
        let kind = match inner.require_byte()? {
            0 => SidecarWindowKind::WholeRun,
            1 => SidecarWindowKind::Accesses,
            2 => SidecarWindowKind::Cycles,
            _ => {
                return Err(CodecError::Corrupt {
                    reason: "unknown window kind",
                })
            }
        };
        let length = inner.read_varint()?;
        let header = CurveHeader {
            trace_hash: u64::from_le_bytes(hash),
            l1_signature: u64::from_le_bytes(l1_signature),
            min_sets,
            max_sets,
            ways_cap,
            window: SidecarWindow { kind, length },
        };
        header.validate()?;
        Ok(CurveReader {
            inner,
            header,
            next_index: 0,
            total: None,
            done: false,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &CurveHeader {
        &self.header
    }

    /// Decodes the next window, or `None` once the whole-run totals have
    /// been reached (retrieve them with [`into_total`](Self::into_total)).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on corrupt input; the reader is then
    /// exhausted.
    pub fn next_window(&mut self) -> Result<Option<WindowRecord>, CodecError> {
        if self.done {
            return Ok(None);
        }
        // Any decode error exhausts the reader — resuming mid-record
        // would misinterpret payload bytes as fresh tags.
        let result = self.decode_next_window();
        if result.is_err() {
            self.done = true;
        }
        result
    }

    fn decode_next_window(&mut self) -> Result<Option<WindowRecord>, CodecError> {
        match self.inner.require_byte()? {
            TAG_WINDOW => {
                let index = self.inner.read_varint()?;
                if index != self.next_index || index >= MAX_WINDOWS {
                    return Err(CodecError::Corrupt {
                        reason: "window records out of order",
                    });
                }
                self.next_index += 1;
                let start_cycle = self.inner.read_varint()?;
                let end_cycle = self.inner.read_varint()?;
                let entries = read_entries(&mut self.inner, &self.header)?;
                Ok(Some(WindowRecord {
                    index,
                    start_cycle,
                    end_cycle,
                    entries,
                }))
            }
            TAG_TOTAL => {
                let total = read_entries(&mut self.inner, &self.header)?;
                match self.inner.next_byte()? {
                    Some(TAG_END) => {}
                    _ => {
                        return Err(CodecError::Corrupt {
                            reason: "sidecar does not end after the totals",
                        });
                    }
                }
                if self.inner.has_more()? {
                    return Err(CodecError::Corrupt {
                        reason: "trailing bytes after END record",
                    });
                }
                self.total = Some(total);
                self.done = true;
                Ok(None)
            }
            _ => Err(CodecError::Corrupt {
                reason: "unknown sidecar record tag",
            }),
        }
    }

    /// Consumes the reader and returns the whole-run totals.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] if the stream ended (or was
    /// abandoned) before the totals record.
    pub fn into_total(self) -> Result<Vec<CurveEntry>, CodecError> {
        self.total.ok_or(CodecError::Corrupt {
            reason: "sidecar stream ends without a totals record",
        })
    }
}

/// A complete, validated curve sidecar held in memory.
///
/// Construction walks the whole stream (corrupt input is rejected with a
/// [`CodecError`], never a panic), so holders can convert to the semantic
/// curve types without error-handling surprises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedCurves {
    header: CurveHeader,
    windows: Vec<WindowRecord>,
    total: Vec<CurveEntry>,
}

impl EncodedCurves {
    /// Assembles a sidecar from its parts (the encoding side; typically
    /// called by `compmem-cache`'s `WindowedCurves::to_sidecar`).
    pub fn from_parts(
        header: CurveHeader,
        windows: Vec<WindowRecord>,
        total: Vec<CurveEntry>,
    ) -> Self {
        EncodedCurves {
            header,
            windows,
            total,
        }
    }

    /// Validates `bytes` as a complete sidecar stream.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the stream is truncated, corrupt, of an
    /// unsupported version or has trailing garbage after its END record.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut reader = CurveReader::new(bytes)?;
        let mut windows = Vec::new();
        while let Some(window) = reader.next_window()? {
            windows.push(window);
        }
        let header = *reader.header();
        let total = reader.into_total()?;
        Ok(EncodedCurves {
            header,
            windows,
            total,
        })
    }

    /// The sidecar header.
    pub fn header(&self) -> &CurveHeader {
        &self.header
    }

    /// The per-window curves, in window order.
    pub fn windows(&self) -> &[WindowRecord] {
        &self.windows
    }

    /// The whole-run totals.
    pub fn total(&self) -> &[CurveEntry] {
        &self.total
    }

    /// Encodes the sidecar to bytes. Deterministic: the same curves
    /// always produce the same bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] if the parts disagree with the
    /// header (histogram shapes, window order).
    pub fn to_bytes(&self) -> Result<Vec<u8>, CodecError> {
        let mut writer = CurveWriter::new(Vec::new(), self.header)?;
        for window in &self.windows {
            writer.write_window(window)?;
        }
        writer.finish(&self.total)
    }

    /// Checks that this sidecar was measured over exactly the given trace
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::SidecarMismatch`] on a hash mismatch.
    pub fn validate_for_trace(&self, trace_bytes: &[u8]) -> Result<(), CodecError> {
        if self.header.trace_hash != trace_content_hash(trace_bytes) {
            return Err(CodecError::SidecarMismatch {
                field: "trace hash",
            });
        }
        Ok(())
    }

    /// Writes the encoded sidecar to a file (atomically: temp file +
    /// rename, so a concurrent reader never observes a torn sidecar).
    ///
    /// # Errors
    ///
    /// Propagates encoding and I/O errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), CodecError> {
        crate::codec::write_file_atomic(path.as_ref(), &self.to_bytes()?).map_err(CodecError::Io)
    }

    /// Reads and validates a sidecar from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        Self::from_bytes(&std::fs::read(path).map_err(CodecError::Io)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> CurveHeader {
        CurveHeader {
            trace_hash: 0xdead_beef_cafe_f00d,
            l1_signature: 0x11aa_22bb_33cc_44dd,
            min_sets: 4,
            max_sets: 16,
            ways_cap: 2,
            window: SidecarWindow {
                kind: SidecarWindowKind::Accesses,
                length: 100,
            },
        }
    }

    fn entry(key: SidecarKey, seed: u64) -> CurveEntry {
        // 3 levels (4, 8, 16 sets), 3 buckets each, rows summing alike.
        let warm = 6 * seed;
        CurveEntry {
            key,
            accesses: warm + seed,
            cold: seed,
            level_histograms: vec![
                vec![3 * seed, 2 * seed, seed],
                vec![4 * seed, seed, seed],
                vec![6 * seed, 0, 0],
            ],
        }
    }

    fn sample() -> EncodedCurves {
        let windows = vec![
            WindowRecord {
                index: 0,
                start_cycle: 0,
                end_cycle: 99,
                entries: vec![
                    entry(SidecarKey::Aggregate, 4),
                    entry(SidecarKey::Task(TaskId::new(0)), 2),
                    entry(SidecarKey::Buffer(BufferId::new(1)), 2),
                ],
            },
            WindowRecord {
                index: 1,
                start_cycle: 100,
                end_cycle: 150,
                entries: vec![
                    entry(SidecarKey::Aggregate, 3),
                    entry(SidecarKey::Task(TaskId::new(1)), 3),
                ],
            },
        ];
        let total = vec![
            entry(SidecarKey::Aggregate, 7),
            entry(SidecarKey::Task(TaskId::new(0)), 2),
            entry(SidecarKey::Task(TaskId::new(1)), 3),
            entry(SidecarKey::Buffer(BufferId::new(1)), 2),
            entry(SidecarKey::RtData, 1),
        ];
        EncodedCurves::from_parts(header(), windows, total)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let curves = sample();
        let bytes = curves.to_bytes().unwrap();
        let back = EncodedCurves::from_bytes(&bytes).unwrap();
        assert_eq!(curves, back);
        // Deterministic encoding.
        assert_eq!(bytes, back.to_bytes().unwrap());
    }

    #[test]
    fn streaming_reader_yields_windows_then_totals() {
        let bytes = sample().to_bytes().unwrap();
        let mut reader = CurveReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.header().levels(), 3);
        let w0 = reader.next_window().unwrap().unwrap();
        assert_eq!(w0.index, 0);
        assert_eq!(w0.entries.len(), 3);
        let w1 = reader.next_window().unwrap().unwrap();
        assert_eq!(w1.index, 1);
        assert!(reader.next_window().unwrap().is_none());
        assert_eq!(reader.into_total().unwrap().len(), 5);
    }

    #[test]
    fn hash_validation_catches_foreign_traces() {
        let curves = sample();
        let fake_trace = b"CMTR-not-really".to_vec();
        assert!(matches!(
            curves.validate_for_trace(&fake_trace),
            Err(CodecError::SidecarMismatch { .. })
        ));
        let matching = EncodedCurves::from_parts(
            CurveHeader {
                trace_hash: trace_content_hash(&fake_trace),
                ..header()
            },
            Vec::new(),
            Vec::new(),
        );
        assert!(matching.validate_for_trace(&fake_trace).is_ok());
    }

    #[test]
    fn corrupt_inputs_error_instead_of_panicking() {
        let good = sample().to_bytes().unwrap();
        for cut in 0..good.len() {
            assert!(
                EncodedCurves::from_bytes(&good[..cut]).is_err(),
                "truncation at {cut} was accepted"
            );
        }
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            EncodedCurves::from_bytes(&bad),
            Err(CodecError::BadSidecarMagic { .. })
        ));
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            EncodedCurves::from_bytes(&bad),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let mut bad = good.clone();
        bad.push(0x77);
        assert!(EncodedCurves::from_bytes(&bad).is_err());
    }

    #[test]
    fn writer_rejects_malformed_input() {
        // Out-of-order windows.
        let mut writer = CurveWriter::new(Vec::new(), header()).unwrap();
        let window = WindowRecord {
            index: 3,
            start_cycle: 0,
            end_cycle: 0,
            entries: Vec::new(),
        };
        assert!(writer.write_window(&window).is_err());
        // Histogram shape disagreeing with the header.
        let writer = CurveWriter::new(Vec::new(), header()).unwrap();
        let bad_entry = CurveEntry {
            key: SidecarKey::AppData,
            accesses: 0,
            cold: 0,
            level_histograms: vec![vec![0, 0]],
        };
        assert!(writer.finish(&[bad_entry]).is_err());
        // Invalid headers never construct a writer.
        let mut bad = header();
        bad.min_sets = 3;
        assert!(CurveWriter::new(Vec::new(), bad).is_err());
        let mut bad = header();
        bad.window.length = 0;
        assert!(CurveWriter::new(Vec::new(), bad).is_err());
    }

    #[test]
    fn unsorted_entries_are_rejected_on_decode() {
        let mut curves = sample();
        curves.windows[0].entries.swap(1, 2);
        let bytes = curves.to_bytes().unwrap();
        assert!(matches!(
            EncodedCurves::from_bytes(&bytes),
            Err(CodecError::Corrupt { .. })
        ));
        // The streaming reader is exhausted by the error: it never
        // resumes parsing mid-record.
        let mut reader = CurveReader::new(bytes.as_slice()).unwrap();
        assert!(reader.next_window().is_err());
        assert!(matches!(reader.next_window(), Ok(None)));
        assert!(reader.into_total().is_err());
    }

    #[test]
    fn overflowing_histograms_are_corrupt_not_panics() {
        // Two buckets near u64::MAX wrap to a small u64 sum; the decoder
        // must reject them (u128 arithmetic), not accept or panic.
        let writer = CurveWriter::new(Vec::new(), header()).unwrap();
        let half = 1u64 << 63;
        let evil = CurveEntry {
            key: SidecarKey::Aggregate,
            // The first row's wrapped u64 sum is exactly 2 = accesses -
            // cold (2^63 + 2^63 + 2 ≡ 2 mod 2^64): wrapping arithmetic
            // would falsely validate it, debug arithmetic would panic.
            accesses: 6,
            cold: 4,
            level_histograms: vec![vec![half, half, 2], vec![2, 0, 0], vec![2, 0, 0]],
        };
        let bytes = writer.finish(&[evil]).unwrap();
        assert!(matches!(
            EncodedCurves::from_bytes(&bytes),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        assert_eq!(trace_content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(trace_content_hash(b"a"), trace_content_hash(b"b"));
    }

    #[test]
    fn sidecar_path_swaps_the_extension() {
        assert_eq!(
            sidecar_path(Path::new("/tmp/mpeg2-tiny.cmt")),
            Path::new("/tmp/mpeg2-tiny.curves")
        );
    }
}
