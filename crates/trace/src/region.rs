//! Memory regions: the "memory-active entities" the paper allocates cache to.
//!
//! The paper partitions the shared L2 between *tasks*, *communication
//! buffers* (YAPI FIFOs and frame buffers) and the *shared static sections*
//! (application data/bss and run-time-system data/bss). A [`Region`] is one
//! such entity together with the address interval it occupies; the
//! [`RegionTable`] is the interval table the operating system loads into the
//! cache controller so that every access can be attributed to a region.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, LINE_SIZE_BYTES};
use crate::error::TraceError;

/// Identifier of a task in the application graph.
///
/// Tasks are the nodes of the YAPI process network; the identifier is dense
/// (0..n) and assigned by the application builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        TaskId(index)
    }

    /// Returns the dense index of the task.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of an inter-task communication buffer (FIFO or frame buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BufferId(u32);

impl BufferId {
    /// Creates a buffer identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        BufferId(index)
    }

    /// Returns the dense index of the buffer.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Identifier of a memory region, dense over the whole address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(u32);

impl RegionId {
    /// Creates a region identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        RegionId(index)
    }

    /// Returns the dense index of the region.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// What a region is used for, i.e. which "memory-active entity" owns it.
///
/// The cache-allocation strategy of the paper treats the kinds differently:
/// task-private regions are cached in the task's exclusive partition, each
/// communication buffer gets its own partition, and the shared static
/// sections get small dedicated partitions so that they cannot evict any
/// task's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Instructions of a task.
    TaskCode {
        /// Owning task.
        task: TaskId,
    },
    /// Statically initialised private data of a task.
    TaskData {
        /// Owning task.
        task: TaskId,
    },
    /// Zero-initialised private data (bss) of a task.
    TaskBss {
        /// Owning task.
        task: TaskId,
    },
    /// Heap storage privately owned by a task (dedicated `malloc` arena).
    TaskHeap {
        /// Owning task.
        task: TaskId,
    },
    /// Stack of a task.
    TaskStack {
        /// Owning task.
        task: TaskId,
    },
    /// A bounded YAPI FIFO channel between two tasks.
    Fifo {
        /// Buffer identifier of the FIFO.
        buffer: BufferId,
    },
    /// A frame buffer produced completely before being consumed.
    FrameBuffer {
        /// Buffer identifier of the frame buffer.
        buffer: BufferId,
    },
    /// Application-wide statically initialised data shared by all tasks.
    AppData,
    /// Application-wide zero-initialised data shared by all tasks.
    AppBss,
    /// Run-time system (operating system) initialised data.
    RtData,
    /// Run-time system (operating system) zero-initialised data.
    RtBss,
}

impl RegionKind {
    /// Returns the owning task for task-private region kinds.
    pub fn owner_task(&self) -> Option<TaskId> {
        match *self {
            RegionKind::TaskCode { task }
            | RegionKind::TaskData { task }
            | RegionKind::TaskBss { task }
            | RegionKind::TaskHeap { task }
            | RegionKind::TaskStack { task } => Some(task),
            _ => None,
        }
    }

    /// Returns the communication buffer for FIFO / frame-buffer kinds.
    pub fn buffer(&self) -> Option<BufferId> {
        match *self {
            RegionKind::Fifo { buffer } | RegionKind::FrameBuffer { buffer } => Some(buffer),
            _ => None,
        }
    }

    /// Returns `true` for the shared static sections (application and
    /// run-time-system data / bss).
    pub fn is_shared_static(&self) -> bool {
        matches!(
            self,
            RegionKind::AppData | RegionKind::AppBss | RegionKind::RtData | RegionKind::RtBss
        )
    }

    /// Returns `true` for inter-task communication buffers.
    pub fn is_communication(&self) -> bool {
        self.buffer().is_some()
    }

    /// Returns `true` for regions private to a single task.
    pub fn is_task_private(&self) -> bool {
        self.owner_task().is_some()
    }
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RegionKind::TaskCode { task } => write!(f, "code({task})"),
            RegionKind::TaskData { task } => write!(f, "data({task})"),
            RegionKind::TaskBss { task } => write!(f, "bss({task})"),
            RegionKind::TaskHeap { task } => write!(f, "heap({task})"),
            RegionKind::TaskStack { task } => write!(f, "stack({task})"),
            RegionKind::Fifo { buffer } => write!(f, "fifo({buffer})"),
            RegionKind::FrameBuffer { buffer } => write!(f, "frame({buffer})"),
            RegionKind::AppData => write!(f, "app.data"),
            RegionKind::AppBss => write!(f, "app.bss"),
            RegionKind::RtData => write!(f, "rt.data"),
            RegionKind::RtBss => write!(f, "rt.bss"),
        }
    }
}

/// A named, contiguous, line-aligned address interval owned by one entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Dense identifier of the region.
    pub id: RegionId,
    /// Human-readable name, e.g. `"idct1.code"` or `"fifo.vld_to_isiq"`.
    pub name: String,
    /// What the region is used for.
    pub kind: RegionKind,
    /// First byte of the region (line aligned).
    pub base: Addr,
    /// Size of the region in bytes (multiple of the line size).
    pub size: u64,
}

impl Region {
    /// Returns the first address past the end of the region.
    pub fn end(&self) -> Addr {
        self.base.offset(self.size)
    }

    /// Returns `true` if `addr` lies inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Returns the number of cache lines spanned by the region.
    pub fn lines(&self) -> u64 {
        self.size / LINE_SIZE_BYTES
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}..{} ({} B)",
            self.name,
            self.kind,
            self.base,
            self.end(),
            self.size
        )
    }
}

/// The interval table that maps addresses to regions.
///
/// This is the software model of the table the operating system loads into
/// the partitionable L2 controller (the "third alternative" of §4.2 of the
/// paper): on every access the cache looks up the interval containing the
/// address to find the owning region and, from it, the partition to index.
///
/// ```
/// use compmem_trace::{Addr, RegionKind, RegionTable, TaskId};
/// # fn main() -> Result<(), compmem_trace::TraceError> {
/// let mut table = RegionTable::new();
/// let code = table.insert("t0.code", RegionKind::TaskCode { task: TaskId::new(0) }, 4096)?;
/// let region = table.region(code);
/// assert!(table.lookup(region.base).is_some());
/// assert_eq!(table.lookup(region.base).unwrap().id, code);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionTable {
    regions: Vec<Region>,
    /// Interval index: base address -> region index, for binary search.
    by_base: BTreeMap<u64, usize>,
    next_base: u64,
}

impl RegionTable {
    /// Creates an empty region table.
    ///
    /// The first allocated region starts at a non-zero base so that address
    /// zero is never valid (helps catch uninitialised-address bugs).
    pub fn new() -> Self {
        RegionTable {
            regions: Vec::new(),
            by_base: BTreeMap::new(),
            next_base: LINE_SIZE_BYTES,
        }
    }

    /// Allocates a new region of `size` bytes at the next free base address.
    ///
    /// The size is rounded up to a whole number of cache lines so that no
    /// cache line is ever shared between two regions.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyRegion`] if `size` is zero and
    /// [`TraceError::DuplicateRegionName`] if `name` is already in use.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        kind: RegionKind,
        size: u64,
    ) -> Result<RegionId, TraceError> {
        let name = name.into();
        if size == 0 {
            return Err(TraceError::EmptyRegion { name });
        }
        if self.regions.iter().any(|r| r.name == name) {
            return Err(TraceError::DuplicateRegionName { name });
        }
        let size = size.div_ceil(LINE_SIZE_BYTES) * LINE_SIZE_BYTES;
        let id = RegionId::new(self.regions.len() as u32);
        let base = Addr::new(self.next_base);
        self.next_base += size;
        let index = self.regions.len();
        self.regions.push(Region {
            id,
            name,
            kind,
            base,
            size,
        });
        self.by_base.insert(base.value(), index);
        Ok(id)
    }

    /// Returns the region with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier was not produced by this table.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Returns the region containing `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<&Region> {
        let (_, &index) = self.by_base.range(..=addr.value()).next_back()?;
        let region = &self.regions[index];
        region.contains(addr).then_some(region)
    }

    /// Returns the region with the given name, if any.
    pub fn by_name(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Returns all regions in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Returns the number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if no region has been allocated.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Returns an iterator over the regions in allocation order.
    pub fn iter(&self) -> std::slice::Iter<'_, Region> {
        self.regions.iter()
    }

    /// Total footprint in bytes of all allocated regions.
    pub fn total_footprint(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }

    /// Returns all regions owned by `task` (code, data, bss, heap, stack).
    pub fn task_regions(&self, task: TaskId) -> Vec<&Region> {
        self.regions
            .iter()
            .filter(|r| r.kind.owner_task() == Some(task))
            .collect()
    }

    /// Returns all communication-buffer regions (FIFOs and frame buffers).
    pub fn buffer_regions(&self) -> Vec<&Region> {
        self.regions
            .iter()
            .filter(|r| r.kind.is_communication())
            .collect()
    }
}

impl<'a> IntoIterator for &'a RegionTable {
    type Item = &'a Region;
    type IntoIter = std::slice::Iter<'a, Region>;

    fn into_iter(self) -> Self::IntoIter {
        self.regions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(sizes: &[u64]) -> RegionTable {
        let mut t = RegionTable::new();
        for (i, &s) in sizes.iter().enumerate() {
            t.insert(
                format!("r{i}"),
                RegionKind::TaskData {
                    task: TaskId::new(i as u32),
                },
                s,
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn regions_are_line_aligned_and_disjoint() {
        let t = table_with(&[1, 63, 64, 65, 1000]);
        for r in t.iter() {
            assert_eq!(r.base.value() % LINE_SIZE_BYTES, 0);
            assert_eq!(r.size % LINE_SIZE_BYTES, 0);
        }
        for (a, b) in t.iter().zip(t.iter().skip(1)) {
            assert!(a.end() <= b.base, "{a} overlaps {b}");
        }
    }

    #[test]
    fn lookup_finds_containing_region() {
        let t = table_with(&[128, 256, 64]);
        for r in t.iter() {
            assert_eq!(t.lookup(r.base).unwrap().id, r.id);
            assert_eq!(t.lookup(r.base.offset(r.size - 1)).unwrap().id, r.id);
        }
        assert!(t.lookup(Addr::new(0)).is_none());
        let last = t.regions().last().unwrap();
        assert!(t.lookup(last.end()).is_none());
    }

    #[test]
    fn empty_region_is_rejected() {
        let mut t = RegionTable::new();
        let err = t.insert("zero", RegionKind::AppData, 0).unwrap_err();
        assert!(matches!(err, TraceError::EmptyRegion { .. }));
    }

    #[test]
    fn duplicate_name_is_rejected() {
        let mut t = RegionTable::new();
        t.insert("x", RegionKind::AppData, 64).unwrap();
        let err = t.insert("x", RegionKind::AppBss, 64).unwrap_err();
        assert!(matches!(err, TraceError::DuplicateRegionName { .. }));
    }

    #[test]
    fn kind_classification() {
        let task = TaskId::new(3);
        assert_eq!(RegionKind::TaskHeap { task }.owner_task(), Some(task));
        assert!(RegionKind::AppBss.is_shared_static());
        assert!(RegionKind::Fifo {
            buffer: BufferId::new(1)
        }
        .is_communication());
        assert!(!RegionKind::RtData.is_task_private());
    }

    #[test]
    fn task_and_buffer_queries() {
        let mut t = RegionTable::new();
        let task = TaskId::new(0);
        t.insert("t0.code", RegionKind::TaskCode { task }, 128)
            .unwrap();
        t.insert("t0.data", RegionKind::TaskData { task }, 128)
            .unwrap();
        t.insert(
            "f0",
            RegionKind::Fifo {
                buffer: BufferId::new(0),
            },
            256,
        )
        .unwrap();
        t.insert("app.data", RegionKind::AppData, 64).unwrap();
        assert_eq!(t.task_regions(task).len(), 2);
        assert_eq!(t.buffer_regions().len(), 1);
        assert_eq!(t.total_footprint(), 128 + 128 + 256 + 64);
    }

    #[test]
    fn by_name_finds_region() {
        let t = table_with(&[64, 64]);
        assert!(t.by_name("r1").is_some());
        assert!(t.by_name("nope").is_none());
    }

    #[test]
    fn display_formats() {
        let t = table_with(&[64]);
        let r = &t.regions()[0];
        let s = r.to_string();
        assert!(s.contains("r0"));
        assert!(s.contains("data(T0)"));
    }
}
