//! Instrumented address space used by the functional workloads.
//!
//! The paper's workloads are real TriMedia binaries; the reproduction runs
//! functional Rust implementations of the same task graphs instead. To make
//! those implementations produce realistic address streams, all their state
//! lives in [`ScalarArray`]s allocated from an [`AddressSpace`]: every element
//! read or write emits an [`Access`] with the correct byte address, task and
//! region attribution.

use serde::{Deserialize, Serialize};

use crate::access::Access;
use crate::addr::Addr;
use crate::error::TraceError;
use crate::region::{Region, RegionId, RegionKind, RegionTable, TaskId};
use crate::sink::AccessSink;

/// Allocator of the simulated linear address space.
///
/// Thin wrapper around a [`RegionTable`] that also hands out instrumented
/// arrays backed by the allocated regions.
///
/// ```
/// use compmem_trace::{AddressSpace, RegionKind, TaskId, TraceBuffer};
/// # fn main() -> Result<(), compmem_trace::TraceError> {
/// let mut space = AddressSpace::new();
/// let t = TaskId::new(0);
/// let r = space.allocate_region("t0.data", RegionKind::TaskData { task: t }, 1024)?;
/// let mut a = space.array(r)?;
/// let mut sink = TraceBuffer::new();
/// a.write(&mut sink, t, 0, 7);
/// assert_eq!(a.read(&mut sink, t, 0), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AddressSpace {
    table: RegionTable,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            table: RegionTable::new(),
        }
    }

    /// Allocates a region of `size` bytes and returns its identifier.
    ///
    /// # Errors
    ///
    /// See [`RegionTable::insert`].
    pub fn allocate_region(
        &mut self,
        name: impl Into<String>,
        kind: RegionKind,
        size: u64,
    ) -> Result<RegionId, TraceError> {
        self.table.insert(name, kind, size)
    }

    /// Returns the metadata of a region.
    pub fn region(&self, id: RegionId) -> &Region {
        self.table.region(id)
    }

    /// Returns the underlying region table (e.g. to load it into the
    /// partitioned cache controller).
    pub fn table(&self) -> &RegionTable {
        &self.table
    }

    /// Consumes the address space and returns its region table.
    pub fn into_table(self) -> RegionTable {
        self.table
    }

    /// Creates an instrumented array of 4-byte elements covering `region`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownRegion`] if `region` was not allocated
    /// from this space.
    pub fn array(&self, region: RegionId) -> Result<ScalarArray, TraceError> {
        self.array_with_elem_size(region, 4)
    }

    /// Creates an instrumented array with the given element size in bytes
    /// (1, 2, 4 or 8) covering `region`.
    ///
    /// The array length is the region size divided by the element size.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownRegion`] if `region` was not allocated
    /// from this space.
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is not 1, 2, 4 or 8.
    pub fn array_with_elem_size(
        &self,
        region: RegionId,
        elem_size: u16,
    ) -> Result<ScalarArray, TraceError> {
        assert!(
            matches!(elem_size, 1 | 2 | 4 | 8),
            "element size must be 1, 2, 4 or 8 bytes"
        );
        if region.index() >= self.table.len() {
            return Err(TraceError::UnknownRegion {
                index: region.index(),
            });
        }
        let r = self.table.region(region);
        Ok(ScalarArray::new(r, elem_size))
    }
}

/// An instrumented array mapped onto one region of the address space.
///
/// Element reads and writes go through an [`AccessSink`] so the memory
/// hierarchy (or a trace buffer) observes the exact byte addresses the
/// workload touches. Storage is `i32` regardless of the element size; the
/// element size only determines how addresses advance, which is what the
/// caches care about.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalarArray {
    region: RegionId,
    name: String,
    base: Addr,
    elem_size: u16,
    data: Vec<i32>,
}

impl ScalarArray {
    fn new(region: &Region, elem_size: u16) -> Self {
        let len = (region.size / u64::from(elem_size)) as usize;
        ScalarArray {
            region: region.id,
            name: region.name.clone(),
            base: region.base,
            elem_size,
            data: vec![0; len],
        }
    }

    /// Region this array is mapped onto.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element size in bytes.
    pub fn elem_size(&self) -> u16 {
        self.elem_size
    }

    /// Byte address of element `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn addr_of(&self, index: usize) -> Addr {
        assert!(index < self.data.len(), "index out of bounds");
        self.base.offset(index as u64 * u64::from(self.elem_size))
    }

    /// Reads element `index`, reporting the access to `sink` on behalf of
    /// `task`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn read<S: AccessSink>(&self, sink: &mut S, task: TaskId, index: usize) -> i32 {
        sink.record(Access::load(
            self.addr_of(index),
            self.elem_size,
            task,
            self.region,
        ));
        self.data[index]
    }

    /// Writes element `index`, reporting the access to `sink` on behalf of
    /// `task`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn write<S: AccessSink>(&mut self, sink: &mut S, task: TaskId, index: usize, value: i32) {
        sink.record(Access::store(
            self.addr_of(index),
            self.elem_size,
            task,
            self.region,
        ));
        self.data[index] = value;
    }

    /// Reads element `index` without reporting an access (for checks and
    /// assertions outside the measured computation).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn peek(&self, index: usize) -> i32 {
        self.data[index]
    }

    /// Writes element `index` without reporting an access (for initialising
    /// inputs outside the measured computation).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn poke(&mut self, index: usize, value: i32) {
        self.data[index] = value;
    }

    /// Fills the whole array with `value`, reporting one store per element.
    ///
    /// The stores are reported as **one batch** through
    /// [`AccessSink::record_all`], so sinks that understand batches (the
    /// platform's burst path, the trace writer) preserve the run instead of
    /// paying per-access dispatch.
    pub fn fill<S: AccessSink>(&mut self, sink: &mut S, task: TaskId, value: i32) {
        let stores: Vec<Access> = (0..self.data.len())
            .map(|i| Access::store(self.addr_of(i), self.elem_size, task, self.region))
            .collect();
        sink.record_all(&stores);
        self.data.fill(value);
    }

    /// Silently fills the whole array with `value` (initialisation data).
    pub fn fill_silent(&mut self, value: i32) {
        self.data.fill(value);
    }

    /// Returns the raw contents (for functional verification in tests).
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceBuffer;
    use crate::AccessKind;

    fn space_and_region(size: u64) -> (AddressSpace, RegionId) {
        let mut space = AddressSpace::new();
        let r = space
            .allocate_region(
                "t.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                size,
            )
            .unwrap();
        (space, r)
    }

    #[test]
    fn array_length_depends_on_elem_size() {
        let (space, r) = space_and_region(256);
        assert_eq!(space.array(r).unwrap().len(), 64);
        assert_eq!(space.array_with_elem_size(r, 1).unwrap().len(), 256);
        assert_eq!(space.array_with_elem_size(r, 8).unwrap().len(), 32);
    }

    #[test]
    fn read_write_emit_correct_addresses() {
        let (space, r) = space_and_region(256);
        let base = space.region(r).base;
        let mut a = space.array(r).unwrap();
        let mut sink = TraceBuffer::new();
        let t = TaskId::new(0);
        a.write(&mut sink, t, 3, 99);
        let v = a.read(&mut sink, t, 3);
        assert_eq!(v, 99);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.accesses()[0].kind, AccessKind::Store);
        assert_eq!(sink.accesses()[0].addr, base.offset(12));
        assert_eq!(sink.accesses()[1].kind, AccessKind::Load);
        assert_eq!(sink.accesses()[1].region, r);
    }

    #[test]
    fn peek_and_poke_do_not_emit() {
        let (space, r) = space_and_region(64);
        let mut a = space.array(r).unwrap();
        let mut sink = TraceBuffer::new();
        a.poke(0, 5);
        assert_eq!(a.peek(0), 5);
        assert!(sink.is_empty());
        a.fill(&mut sink, TaskId::new(0), 1);
        assert_eq!(sink.len(), a.len());
        assert!(a.as_slice().iter().all(|&x| x == 1));
    }

    #[test]
    fn unknown_region_is_rejected() {
        let (space, _) = space_and_region(64);
        let err = space.array(RegionId::new(99)).unwrap_err();
        assert!(matches!(err, TraceError::UnknownRegion { .. }));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_read_panics() {
        let (space, r) = space_and_region(64);
        let a = space.array(r).unwrap();
        let mut sink = TraceBuffer::new();
        let _ = a.read(&mut sink, TaskId::new(0), 1000);
    }

    #[test]
    #[should_panic(expected = "element size")]
    fn bad_elem_size_panics() {
        let (space, r) = space_and_region(64);
        let _ = space.array_with_elem_size(r, 3);
    }

    #[test]
    fn fill_silent_does_not_touch_sink() {
        let (space, r) = space_and_region(64);
        let mut a = space.array(r).unwrap();
        a.fill_silent(42);
        assert!(a.as_slice().iter().all(|&x| x == 42));
    }
}
