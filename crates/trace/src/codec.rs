//! The binary trace IR: compact record/replay encoding of access streams.
//!
//! Recording an application once and replaying the encoded trace many times
//! is how organisation sweeps avoid re-executing the workload functionally.
//! This module defines the on-disk / in-memory intermediate representation
//! (IR) of such traces, the streaming [`TraceWriter`] / [`TraceReader`]
//! pair, and the self-contained in-memory [`EncodedTrace`].
//!
//! # IR layout
//!
//! A trace is one byte stream:
//!
//! ```text
//! header  := magic "CMTR" | version u8 (=2) | region table | varint processors
//! regions := varint count | { varint name_len | name bytes
//!                            | kind tag u8 | [varint task-or-buffer id]
//!                            | varint size }*
//! body    := { segment }* | END | directory
//! segment := SEGMENT (0x04) { record }*
//! record  := DEF_TASK   (0x01) varint raw_task_id
//!          | DEF_REGION (0x02) varint raw_region_id
//!          | RUN        (0x03) varint processor | zigzag cycle_delta
//!          | ACCESS     (0x80|flags) …
//! END     := 0x00
//! directory := varint segment_count
//!            | { varint byte_offset | varint first_cycle | varint accesses
//!              | varint region_count | { varint raw_region_id }* }*
//! ```
//!
//! # Segments (version 2)
//!
//! A `SEGMENT` record **fully resets** the codec context: both
//! dictionaries, the previous address/cycle/task/region/size and the
//! current processor. Every segment therefore decodes independently from
//! its byte offset with fresh state — the property the **segment
//! directory** trailer exploits. The directory (written after `END`)
//! lists, per segment, its absolute byte offset, the cycle of its first
//! access, its access count and a snapshot of the region ids it
//! references, so a consumer can slice the encoded bytes and decode one
//! segment — or many concurrently — without a full-file pass
//! ([`EncodedTrace::segment_runs`]). Full-stream validation
//! ([`EncodedTrace::from_bytes`]) re-derives every directory entry from
//! the records it walks and rejects a trailer that disagrees, so a
//! corrupt directory is an error, never a mis-slice.
//!
//! Version 1 streams (no `SEGMENT` records, no trailer) remain readable;
//! [`TraceWriter::v1_compat`] still produces them for interoperability
//! testing.
//!
//! An `ACCESS` tag byte has bit 7 set; bits 0–1 carry the
//! [`AccessKind`] (0 = ifetch, 1 = load, 2 = store) and bit 2 is the
//! *context-repeat* flag. When the flag is clear, the record continues with
//! the task dictionary index, the region dictionary index and the access
//! size (all varint); when it is set, task, region and size are inherited
//! from the previous access. Every access then stores its address as a
//! zigzag-encoded delta from the previous access's address, and its cycle
//! as a plain varint gap from the previous cycle of the same run.
//!
//! Tasks and regions are *dictionary* encoded: the first time a raw
//! [`TaskId`] / [`RegionId`] appears, the writer emits a `DEF_TASK` /
//! `DEF_REGION` record appending it to the (dense) dictionary, and all
//! later references are small dictionary indices. A `RUN` record starts a
//! new *run* — a maximal stretch of accesses issued by one processor in
//! recorded order — and re-anchors the cycle clock with a signed delta, so
//! interleaved per-processor streams with locally monotone clocks encode
//! compactly.
//!
//! The header embeds the application's [`RegionTable`] (regions are
//! rebuilt by replaying `insert` calls, which reproduces identical base
//! addresses), so an encoded trace is a *self-contained scenario*: the
//! partitioned L2 organisations can be built against `trace.table()`
//! without the original application.
//!
//! Decoding is strict: every branch is bounds-checked and corrupt input is
//! reported as a [`CodecError`], never a panic.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::access::{Access, AccessKind};
use crate::addr::Addr;
use crate::region::{BufferId, RegionId, RegionKind, RegionTable, TaskId};

/// Magic bytes opening every encoded trace.
pub const TRACE_MAGIC: [u8; 4] = *b"CMTR";
/// Current version of the trace IR (segmented, with a directory trailer).
pub const TRACE_VERSION: u8 = 2;
/// The legacy unsegmented version, still readable (and producible via
/// [`TraceWriter::v1_compat`] for compatibility testing).
pub const TRACE_VERSION_V1: u8 = 1;
/// Default accesses per segment for v2 writers — small enough that a
/// multi-second recording yields many independently decodable slices,
/// large enough that the per-segment context reset (re-emitted
/// dictionaries, full-width first deltas) stays amortised.
pub const DEFAULT_SEGMENT_ACCESSES: u64 = 8192;

/// Monotonic discriminator for atomic-write temp file names, so
/// concurrent writers within one process never collide.
static ATOMIC_WRITE_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Writes `bytes` to `path` atomically: a uniquely named temp file in the
/// same directory, then a rename. A concurrent reader observes the old
/// contents or the new contents, never a torn mixture — the property the
/// `compmem serve` curve store relies on when many clients write traces
/// and sidecars at once.
///
/// # Errors
///
/// Propagates the I/O error of the write or the rename (the temp file is
/// removed on a failed rename).
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let n = ATOMIC_WRITE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    name.push_str(&format!(".tmp-{}-{n}", std::process::id()));
    let tmp = path.with_file_name(name);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

const TAG_END: u8 = 0x00;
const TAG_DEF_TASK: u8 = 0x01;
const TAG_DEF_REGION: u8 = 0x02;
const TAG_RUN: u8 = 0x03;
const TAG_SEGMENT: u8 = 0x04;
const TAG_ACCESS: u8 = 0x80;
const FLAG_REPEAT: u8 = 0x04;

/// Longest legal LEB128 encoding of a `u64`.
const MAX_VARINT_BYTES: u32 = 10;

/// Errors produced while encoding or decoding traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// An I/O error from the underlying reader or writer.
    Io(std::io::Error),
    /// The stream does not start with the trace magic.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The stream's version is not supported by this reader.
    UnsupportedVersion {
        /// The version actually found.
        found: u8,
    },
    /// The stream is malformed.
    Corrupt {
        /// What was wrong.
        reason: &'static str,
    },
    /// A record referenced a dictionary entry that was never defined.
    UndefinedDictionaryEntry {
        /// `"task"` or `"region"`.
        kind: &'static str,
        /// The out-of-range dictionary index.
        index: u64,
    },
    /// The embedded region table could not be rebuilt.
    Region(crate::error::TraceError),
    /// The stream does not start with the curve-sidecar magic (it is not a
    /// `.curves` file).
    BadSidecarMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// A curve sidecar is well-formed but does not belong to the trace (or
    /// the profiling configuration) it was loaded for.
    SidecarMismatch {
        /// Which header field differed (`"trace hash"`,
        /// `"l1 configuration"`, `"resolution"`, `"window config"`).
        field: &'static str,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "trace i/o error: {e}"),
            CodecError::BadMagic { found } => {
                write!(f, "not a compmem trace (magic {found:02x?})")
            }
            CodecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported trace version {found} \
                     (expected {TRACE_VERSION_V1} or {TRACE_VERSION})"
                )
            }
            CodecError::Corrupt { reason } => write!(f, "corrupt trace: {reason}"),
            CodecError::UndefinedDictionaryEntry { kind, index } => {
                write!(
                    f,
                    "corrupt trace: undefined {kind} dictionary entry {index}"
                )
            }
            CodecError::Region(e) => write!(f, "corrupt trace: invalid region table: {e}"),
            CodecError::BadSidecarMagic { found } => {
                write!(f, "not a compmem curve sidecar (magic {found:02x?})")
            }
            CodecError::SidecarMismatch { field } => {
                write!(f, "curve sidecar does not match the trace: {field} differs")
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::Region(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(value: std::io::Error) -> Self {
        CodecError::Io(value)
    }
}

impl From<crate::error::TraceError> for CodecError {
    fn from(value: crate::error::TraceError) -> Self {
        CodecError::Region(value)
    }
}

// ----- varint / zigzag primitives (shared with the curve sidecar codec) -----

pub(crate) fn write_varint<W: Write>(w: &mut W, mut value: u64) -> std::io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn write_zigzag<W: Write>(w: &mut W, value: i64) -> std::io::Result<()> {
    write_varint(w, ((value << 1) ^ (value >> 63)) as u64)
}

/// A buffered byte cursor over a reader.
///
/// The decoder consumes the stream byte by byte (varints, tags); going
/// through `Read::read` per byte costs more than the whole simulation, so
/// every read is served from a block buffer instead. Shared with the curve
/// sidecar codec (`crate::curves`), which has the same decoding needs.
#[derive(Debug)]
pub(crate) struct ByteSource<R: Read> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    /// Bytes consumed by completed buffer blocks (the stream offset of
    /// `buf[0]`); the absolute offset of the next byte is `base + pos`.
    base: u64,
}

impl<R: Read> ByteSource<R> {
    pub(crate) fn new(inner: R) -> Self {
        ByteSource {
            inner,
            buf: vec![0u8; 64 * 1024],
            pos: 0,
            len: 0,
            base: 0,
        }
    }

    /// Absolute stream offset of the next unread byte. Drives the segment
    /// directory: the writer records where each SEGMENT tag landed, the
    /// validator re-derives the same offsets while decoding.
    #[inline]
    pub(crate) fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn refill(&mut self) -> Result<(), CodecError> {
        // `refill` is only called with the buffer fully consumed
        // (`pos == len`), so the block it replaces advances `base` whole.
        self.base += self.len as u64;
        loop {
            match self.inner.read(&mut self.buf) {
                Ok(n) => {
                    self.pos = 0;
                    self.len = n;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(CodecError::Io(e)),
            }
        }
    }

    #[inline]
    pub(crate) fn next_byte(&mut self) -> Result<Option<u8>, CodecError> {
        if self.pos < self.len {
            let byte = self.buf[self.pos];
            self.pos += 1;
            return Ok(Some(byte));
        }
        self.refill()?;
        if self.len == 0 {
            return Ok(None);
        }
        self.pos = 1;
        Ok(Some(self.buf[0]))
    }

    #[inline]
    pub(crate) fn require_byte(&mut self) -> Result<u8, CodecError> {
        self.next_byte()?.ok_or(CodecError::Corrupt {
            reason: "unexpected end of stream",
        })
    }

    pub(crate) fn read_exact(&mut self, out: &mut [u8]) -> Result<(), CodecError> {
        let mut written = 0;
        while written < out.len() {
            if self.pos == self.len {
                self.refill()?;
                if self.len == 0 {
                    return Err(CodecError::Corrupt {
                        reason: "unexpected end of stream",
                    });
                }
            }
            let take = (self.len - self.pos).min(out.len() - written);
            out[written..written + take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
            written += take;
        }
        Ok(())
    }

    /// Returns `true` if any byte remains (used to reject trailing
    /// garbage).
    pub(crate) fn has_more(&mut self) -> Result<bool, CodecError> {
        if self.pos < self.len {
            return Ok(true);
        }
        self.refill()?;
        Ok(self.len > 0)
    }

    pub(crate) fn read_varint(&mut self) -> Result<u64, CodecError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.require_byte()?;
            if shift >= 7 * MAX_VARINT_BYTES - 7 && byte > 1 {
                return Err(CodecError::Corrupt {
                    reason: "varint overflows 64 bits",
                });
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift >= 7 * MAX_VARINT_BYTES {
                return Err(CodecError::Corrupt {
                    reason: "varint longer than 10 bytes",
                });
            }
        }
    }

    fn read_zigzag(&mut self) -> Result<i64, CodecError> {
        let raw = self.read_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }
}

// ----- region table embedding -----

fn kind_tag(kind: RegionKind) -> (u8, Option<u64>) {
    match kind {
        RegionKind::TaskCode { task } => (0, Some(task.index() as u64)),
        RegionKind::TaskData { task } => (1, Some(task.index() as u64)),
        RegionKind::TaskBss { task } => (2, Some(task.index() as u64)),
        RegionKind::TaskHeap { task } => (3, Some(task.index() as u64)),
        RegionKind::TaskStack { task } => (4, Some(task.index() as u64)),
        RegionKind::Fifo { buffer } => (5, Some(buffer.index() as u64)),
        RegionKind::FrameBuffer { buffer } => (6, Some(buffer.index() as u64)),
        RegionKind::AppData => (7, None),
        RegionKind::AppBss => (8, None),
        RegionKind::RtData => (9, None),
        RegionKind::RtBss => (10, None),
    }
}

fn kind_from_tag<R: Read>(tag: u8, r: &mut ByteSource<R>) -> Result<RegionKind, CodecError> {
    let id = |r: &mut ByteSource<R>| -> Result<u32, CodecError> {
        u32::try_from(r.read_varint()?).map_err(|_| CodecError::Corrupt {
            reason: "region-kind owner id exceeds 32 bits",
        })
    };
    Ok(match tag {
        0 => RegionKind::TaskCode {
            task: TaskId::new(id(r)?),
        },
        1 => RegionKind::TaskData {
            task: TaskId::new(id(r)?),
        },
        2 => RegionKind::TaskBss {
            task: TaskId::new(id(r)?),
        },
        3 => RegionKind::TaskHeap {
            task: TaskId::new(id(r)?),
        },
        4 => RegionKind::TaskStack {
            task: TaskId::new(id(r)?),
        },
        5 => RegionKind::Fifo {
            buffer: BufferId::new(id(r)?),
        },
        6 => RegionKind::FrameBuffer {
            buffer: BufferId::new(id(r)?),
        },
        7 => RegionKind::AppData,
        8 => RegionKind::AppBss,
        9 => RegionKind::RtData,
        10 => RegionKind::RtBss,
        _ => {
            return Err(CodecError::Corrupt {
                reason: "unknown region-kind tag",
            })
        }
    })
}

fn write_region_table<W: Write>(w: &mut W, table: &RegionTable) -> std::io::Result<()> {
    write_varint(w, table.len() as u64)?;
    for region in table.iter() {
        write_varint(w, region.name.len() as u64)?;
        w.write_all(region.name.as_bytes())?;
        let (tag, payload) = kind_tag(region.kind);
        w.write_all(&[tag])?;
        if let Some(id) = payload {
            write_varint(w, id)?;
        }
        write_varint(w, region.size)?;
    }
    Ok(())
}

fn read_region_table<R: Read>(r: &mut ByteSource<R>) -> Result<RegionTable, CodecError> {
    let count = r.read_varint()?;
    // A region costs at least 3 bytes; anything claiming more regions than
    // bytes conceivably left is corrupt rather than worth allocating for.
    if count > 1_000_000 {
        return Err(CodecError::Corrupt {
            reason: "implausible region count",
        });
    }
    let mut table = RegionTable::new();
    for _ in 0..count {
        let name_len = r.read_varint()? as usize;
        if name_len > 4096 {
            return Err(CodecError::Corrupt {
                reason: "implausible region name length",
            });
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| CodecError::Corrupt {
            reason: "region name is not UTF-8",
        })?;
        let tag = r.require_byte()?;
        let kind = kind_from_tag(tag, r)?;
        let size = r.read_varint()?;
        // `insert` re-derives the identical base address (bases are the
        // running sum of line-rounded sizes), so the rebuilt table matches
        // the recorded one bit for bit.
        table.insert(name, kind, size)?;
    }
    Ok(table)
}

// ----- records -----

/// One decoded trace record: an access with its issue attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Processor that issued the access.
    pub processor: u32,
    /// Cycle at which the access issued.
    pub cycle: u64,
    /// The access itself.
    pub access: Access,
}

/// A maximal stretch of accesses issued by one processor in recorded order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRun {
    /// Processor that issued the run.
    pub processor: u32,
    /// Cycle at which the first access of the run issued.
    pub start_cycle: u64,
    /// The accesses, in issue order.
    pub accesses: Vec<Access>,
}

/// Counters describing an encoded trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total accesses encoded.
    pub accesses: u64,
    /// Number of runs (contiguous same-processor stretches).
    pub runs: u64,
    /// Number of processors the trace was recorded on.
    pub processors: u32,
    /// Encoded size in bytes (body and header).
    pub encoded_bytes: u64,
    /// Number of independently decodable segments (0 for v1 streams and
    /// empty traces).
    pub segments: u64,
}

/// One entry of the v2 segment directory: everything needed to slice and
/// decode one segment without touching the rest of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Absolute byte offset of the segment's SEGMENT tag.
    pub byte_offset: u64,
    /// Cycle of the segment's first access.
    pub first_cycle: u64,
    /// Accesses encoded in the segment.
    pub accesses: u64,
    /// The regions the segment references (its region-dictionary
    /// snapshot, sorted by raw id) — lets per-key consumers skip segments
    /// that cannot contain their regions.
    pub regions: Vec<RegionId>,
}

impl TraceSummary {
    /// Average encoded bytes per access (the raw in-memory record is 32 B).
    pub fn bytes_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.encoded_bytes as f64 / self.accesses as f64
        }
    }
}

struct EncodeContext {
    task_dict: HashMap<u32, u64>,
    region_dict: HashMap<u32, u64>,
    prev_addr: u64,
    prev_cycle: u64,
    prev_task: Option<TaskId>,
    prev_region: Option<RegionId>,
    prev_size: u16,
    current_processor: Option<u32>,
}

impl EncodeContext {
    fn new() -> Self {
        EncodeContext {
            task_dict: HashMap::new(),
            region_dict: HashMap::new(),
            prev_addr: 0,
            prev_cycle: 0,
            prev_task: None,
            prev_region: None,
            prev_size: 0,
            current_processor: None,
        }
    }

    /// The segment-boundary reset: every field back to its stream-start
    /// state, so the following records decode with no history.
    fn reset(&mut self) {
        self.task_dict.clear();
        self.region_dict.clear();
        self.prev_addr = 0;
        self.prev_cycle = 0;
        self.prev_task = None;
        self.prev_region = None;
        self.prev_size = 0;
        self.current_processor = None;
    }
}

/// A writer wrapper counting bytes as they pass — the segment directory
/// records absolute byte offsets, so the encoder must know where every
/// SEGMENT tag lands even behind an opaque sink.
#[derive(Debug)]
struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Streaming encoder of the trace IR.
///
/// `record` is infallible by signature so the writer can sit behind hot
/// recording paths; the first I/O error poisons the writer and is surfaced
/// by [`finish`](TraceWriter::finish).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: CountingWriter<W>,
    ctx: EncodeContext,
    summary: TraceSummary,
    error: Option<CodecError>,
    version: u8,
    /// Accesses per segment before the writer opens a new one (v2 only).
    segment_accesses: u64,
    segments: Vec<SegmentEntry>,
    current_segment: Option<SegmentEntry>,
}

impl std::fmt::Debug for EncodeContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncodeContext")
            .field("tasks", &self.task_dict.len())
            .field("regions", &self.region_dict.len())
            .finish()
    }
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace: writes the header (magic, version, the embedded
    /// region table and the processor count) to `inner`. Segments roll
    /// over every [`DEFAULT_SEGMENT_ACCESSES`] accesses; use
    /// [`with_segment_accesses`](TraceWriter::with_segment_accesses) to
    /// tune that.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the header cannot be written.
    pub fn new(inner: W, table: &RegionTable, processors: u32) -> Result<Self, CodecError> {
        Self::with_version(
            inner,
            table,
            processors,
            TRACE_VERSION,
            DEFAULT_SEGMENT_ACCESSES,
        )
    }

    /// Starts a v2 trace whose segments roll over every
    /// `segment_accesses` accesses (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the header cannot be written.
    pub fn with_segment_accesses(
        inner: W,
        table: &RegionTable,
        processors: u32,
        segment_accesses: u64,
    ) -> Result<Self, CodecError> {
        Self::with_version(
            inner,
            table,
            processors,
            TRACE_VERSION,
            segment_accesses.max(1),
        )
    }

    /// Starts a **legacy v1** trace: no SEGMENT records, no directory
    /// trailer. Kept so v1 readability stays a tested property rather
    /// than dead code, and so old tooling can be interoperated with.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the header cannot be written.
    pub fn v1_compat(inner: W, table: &RegionTable, processors: u32) -> Result<Self, CodecError> {
        Self::with_version(inner, table, processors, TRACE_VERSION_V1, u64::MAX)
    }

    fn with_version(
        inner: W,
        table: &RegionTable,
        processors: u32,
        version: u8,
        segment_accesses: u64,
    ) -> Result<Self, CodecError> {
        let mut inner = CountingWriter { inner, written: 0 };
        inner.write_all(&TRACE_MAGIC)?;
        inner.write_all(&[version])?;
        write_region_table(&mut inner, table)?;
        write_varint(&mut inner, u64::from(processors))?;
        Ok(TraceWriter {
            inner,
            ctx: EncodeContext::new(),
            summary: TraceSummary {
                processors,
                ..TraceSummary::default()
            },
            error: None,
            version,
            segment_accesses,
            segments: Vec::new(),
            current_segment: None,
        })
    }

    /// Records one access issued by `processor` at `cycle`.
    pub fn record(&mut self, processor: u32, cycle: u64, access: &Access) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.encode(processor, cycle, access) {
            self.error = Some(e);
        }
    }

    /// Records a whole batch of accesses issued by `processor` starting at
    /// `cycle` (they share the batch's issue cycle).
    pub fn record_all(&mut self, processor: u32, cycle: u64, accesses: &[Access]) {
        for access in accesses {
            self.record(processor, cycle, access);
        }
    }

    /// Closes the open segment (snapshotting its region dictionary into
    /// the directory entry) and opens a new one at the current byte
    /// offset, resetting the whole encode context.
    fn begin_segment(&mut self, cycle: u64) -> Result<(), CodecError> {
        self.close_segment();
        let byte_offset = self.inner.written;
        self.inner.write_all(&[TAG_SEGMENT])?;
        self.ctx.reset();
        self.current_segment = Some(SegmentEntry {
            byte_offset,
            first_cycle: cycle,
            accesses: 0,
            regions: Vec::new(),
        });
        Ok(())
    }

    fn close_segment(&mut self) {
        if let Some(mut segment) = self.current_segment.take() {
            let mut ids: Vec<u32> = self.ctx.region_dict.keys().copied().collect();
            ids.sort_unstable();
            segment.regions = ids.into_iter().map(RegionId::new).collect();
            self.segments.push(segment);
        }
    }

    fn encode(&mut self, processor: u32, cycle: u64, access: &Access) -> Result<(), CodecError> {
        if self.version >= TRACE_VERSION {
            let roll_over = match &self.current_segment {
                None => true,
                Some(segment) => segment.accesses >= self.segment_accesses,
            };
            if roll_over {
                self.begin_segment(cycle)?;
            }
        }
        // A processor change — or a clock that moved backwards, which plain
        // varint gaps cannot express — opens a new run.
        if self.ctx.current_processor != Some(processor) || cycle < self.ctx.prev_cycle {
            self.inner.write_all(&[TAG_RUN])?;
            write_varint(&mut self.inner, u64::from(processor))?;
            write_zigzag(
                &mut self.inner,
                cycle.wrapping_sub(self.ctx.prev_cycle) as i64,
            )?;
            self.ctx.current_processor = Some(processor);
            self.ctx.prev_cycle = cycle;
            self.summary.runs += 1;
        }

        let task_raw = access.task.index() as u32;
        if !self.ctx.task_dict.contains_key(&task_raw) {
            let idx = self.ctx.task_dict.len() as u64;
            self.ctx.task_dict.insert(task_raw, idx);
            self.inner.write_all(&[TAG_DEF_TASK])?;
            write_varint(&mut self.inner, u64::from(task_raw))?;
        }
        let region_raw = access.region.index() as u32;
        if !self.ctx.region_dict.contains_key(&region_raw) {
            let idx = self.ctx.region_dict.len() as u64;
            self.ctx.region_dict.insert(region_raw, idx);
            self.inner.write_all(&[TAG_DEF_REGION])?;
            write_varint(&mut self.inner, u64::from(region_raw))?;
        }

        let kind_bits = match access.kind {
            AccessKind::InstrFetch => 0u8,
            AccessKind::Load => 1,
            AccessKind::Store => 2,
        };
        let repeat = self.ctx.prev_task == Some(access.task)
            && self.ctx.prev_region == Some(access.region)
            && self.ctx.prev_size == access.size;
        let mut tag = TAG_ACCESS | kind_bits;
        if repeat {
            tag |= FLAG_REPEAT;
        }
        self.inner.write_all(&[tag])?;
        if !repeat {
            write_varint(&mut self.inner, self.ctx.task_dict[&task_raw])?;
            write_varint(&mut self.inner, self.ctx.region_dict[&region_raw])?;
            write_varint(&mut self.inner, u64::from(access.size))?;
        }
        write_zigzag(
            &mut self.inner,
            access.addr.value().wrapping_sub(self.ctx.prev_addr) as i64,
        )?;
        write_varint(&mut self.inner, cycle - self.ctx.prev_cycle)?;

        self.ctx.prev_addr = access.addr.value();
        self.ctx.prev_cycle = cycle;
        self.ctx.prev_task = Some(access.task);
        self.ctx.prev_region = Some(access.region);
        self.ctx.prev_size = access.size;
        self.summary.accesses += 1;
        if let Some(segment) = &mut self.current_segment {
            segment.accesses += 1;
        }
        Ok(())
    }

    /// Terminates the stream — for v2, appending the segment directory
    /// trailer — and returns the writer together with the summary
    /// counters.
    ///
    /// # Errors
    ///
    /// Surfaces the first error hit while recording, or the final flush
    /// error.
    pub fn finish(mut self) -> Result<(W, TraceSummary), CodecError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.close_segment();
        self.inner.write_all(&[TAG_END])?;
        if self.version >= TRACE_VERSION {
            write_varint(&mut self.inner, self.segments.len() as u64)?;
            for segment in &self.segments {
                write_varint(&mut self.inner, segment.byte_offset)?;
                write_varint(&mut self.inner, segment.first_cycle)?;
                write_varint(&mut self.inner, segment.accesses)?;
                write_varint(&mut self.inner, segment.regions.len() as u64)?;
                for region in &segment.regions {
                    write_varint(&mut self.inner, region.index() as u64)?;
                }
            }
        }
        self.summary.segments = self.segments.len() as u64;
        self.inner.flush()?;
        Ok((self.inner.inner, self.summary))
    }
}

/// Streaming decoder of the trace IR.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: ByteSource<R>,
    table: RegionTable,
    /// Bound for DEF_REGION validation; equals `table.len()` for
    /// whole-stream readers, and is injected for table-less segment-slice
    /// readers.
    table_len: usize,
    processors: u32,
    version: u8,
    task_dict: Vec<TaskId>,
    region_dict: Vec<RegionId>,
    prev_addr: u64,
    prev_cycle: u64,
    prev_task: Option<TaskId>,
    prev_region: Option<RegionId>,
    prev_size: u16,
    current_processor: Option<u32>,
    done: bool,
    /// Decoding one sliced segment: the stream has no header, END record
    /// or trailer, and simply ends at the slice boundary.
    segment_mode: bool,
    /// Whether records are currently legal (v2 requires them inside a
    /// SEGMENT; v1 has no segments, so the whole body counts as open).
    segment_open: bool,
    /// Directory entries re-derived from the records actually walked;
    /// compared against the trailer at END.
    observed_segments: Vec<SegmentEntry>,
    pending_first_cycle: bool,
    directory: Option<Vec<SegmentEntry>>,
    /// Absolute offset of the END tag, once seen (the exclusive byte
    /// bound of the last segment).
    end_offset: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace: parses and validates the header. Both the current
    /// (v2, segmented) and the legacy v1 stream format are accepted.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for I/O failures, a wrong magic or version,
    /// or a corrupt region table.
    pub fn new(inner: R) -> Result<Self, CodecError> {
        let mut inner = ByteSource::new(inner);
        let mut magic = [0u8; 4];
        inner
            .read_exact(&mut magic)
            .map_err(|_| CodecError::Corrupt {
                reason: "stream shorter than the magic",
            })?;
        if magic != TRACE_MAGIC {
            return Err(CodecError::BadMagic { found: magic });
        }
        let version = inner.require_byte()?;
        if version != TRACE_VERSION && version != TRACE_VERSION_V1 {
            return Err(CodecError::UnsupportedVersion { found: version });
        }
        let table = read_region_table(&mut inner)?;
        let processors = u32::try_from(inner.read_varint()?).map_err(|_| CodecError::Corrupt {
            reason: "processor count exceeds 32 bits",
        })?;
        let table_len = table.len();
        Ok(TraceReader {
            inner,
            table,
            table_len,
            processors,
            version,
            task_dict: Vec::new(),
            region_dict: Vec::new(),
            prev_addr: 0,
            prev_cycle: 0,
            prev_task: None,
            prev_region: None,
            prev_size: 0,
            current_processor: None,
            done: false,
            segment_mode: false,
            segment_open: version == TRACE_VERSION_V1,
            observed_segments: Vec::new(),
            pending_first_cycle: false,
            directory: None,
            end_offset: 0,
        })
    }

    /// The region table embedded in the trace header.
    pub fn table(&self) -> &RegionTable {
        &self.table
    }

    /// Number of processors the trace was recorded on.
    pub fn processors(&self) -> u32 {
        self.processors
    }

    /// Version of the trace IR this stream was encoded with.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The segment directory parsed from the trailer — available after
    /// the whole stream has been decoded, `None` for v1 streams.
    pub fn directory(&self) -> Option<&[SegmentEntry]> {
        self.directory.as_deref()
    }

    /// Decodes the next access record, or `None` at the end of the trace.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on corrupt input; the reader is then
    /// exhausted.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, CodecError> {
        if self.done {
            return Ok(None);
        }
        loop {
            let tag = match self.inner.next_byte()? {
                Some(t) => t,
                None => {
                    self.done = true;
                    if self.segment_mode {
                        // A sliced segment simply ends at its byte bound.
                        return Ok(None);
                    }
                    return Err(CodecError::Corrupt {
                        reason: "stream ends without an END record",
                    });
                }
            };
            match tag {
                TAG_END => {
                    self.done = true;
                    if self.segment_mode {
                        return Err(CodecError::Corrupt {
                            reason: "segment slice contains an END record",
                        });
                    }
                    self.end_offset = self.inner.offset() - 1;
                    if self.version >= TRACE_VERSION {
                        self.finalize_observed_segment();
                        let directory = self.read_directory()?;
                        if directory != self.observed_segments {
                            return Err(CodecError::Corrupt {
                                reason: "segment directory does not match the stream",
                            });
                        }
                        self.directory = Some(directory);
                    }
                    return Ok(None);
                }
                TAG_SEGMENT if self.version >= TRACE_VERSION => {
                    // Segment boundary: snapshot the finished segment,
                    // then reset every piece of decode state — the next
                    // records depend on nothing before this tag.
                    let byte_offset = self.inner.offset() - 1;
                    self.finalize_observed_segment();
                    self.task_dict.clear();
                    self.region_dict.clear();
                    self.prev_addr = 0;
                    self.prev_cycle = 0;
                    self.prev_task = None;
                    self.prev_region = None;
                    self.prev_size = 0;
                    self.current_processor = None;
                    self.segment_open = true;
                    self.pending_first_cycle = true;
                    self.observed_segments.push(SegmentEntry {
                        byte_offset,
                        first_cycle: 0,
                        accesses: 0,
                        regions: Vec::new(),
                    });
                }
                TAG_DEF_TASK if self.segment_open => {
                    let raw = u32::try_from(self.inner.read_varint()?).map_err(|_| {
                        CodecError::Corrupt {
                            reason: "task id exceeds 32 bits",
                        }
                    })?;
                    self.task_dict.push(TaskId::new(raw));
                }
                TAG_DEF_REGION if self.segment_open => {
                    let raw = u32::try_from(self.inner.read_varint()?).map_err(|_| {
                        CodecError::Corrupt {
                            reason: "region id exceeds 32 bits",
                        }
                    })?;
                    // A trace is a self-contained scenario: every region an
                    // access names must exist in the embedded table, or
                    // consumers indexing per-region state (the profiler,
                    // the profiling organisation) would be handed a bogus
                    // index.
                    if raw as usize >= self.table_len {
                        self.done = true;
                        return Err(CodecError::Corrupt {
                            reason: "region id outside the embedded region table",
                        });
                    }
                    self.region_dict.push(RegionId::new(raw));
                }
                TAG_RUN if self.segment_open => {
                    let processor = u32::try_from(self.inner.read_varint()?).map_err(|_| {
                        CodecError::Corrupt {
                            reason: "processor id exceeds 32 bits",
                        }
                    })?;
                    let delta = self.inner.read_zigzag()?;
                    self.current_processor = Some(processor);
                    self.prev_cycle = self.prev_cycle.wrapping_add(delta as u64);
                }
                t if t & TAG_ACCESS != 0 && self.segment_open => {
                    return self.decode_access(t).map(Some)
                }
                TAG_DEF_TASK | TAG_DEF_REGION | TAG_RUN => {
                    debug_assert!(!self.segment_open);
                    self.done = true;
                    return Err(CodecError::Corrupt {
                        reason: "record outside a segment",
                    });
                }
                t if t & TAG_ACCESS != 0 => {
                    self.done = true;
                    return Err(CodecError::Corrupt {
                        reason: "record outside a segment",
                    });
                }
                _ => {
                    self.done = true;
                    return Err(CodecError::Corrupt {
                        reason: "unknown record tag",
                    });
                }
            }
        }
    }

    /// Completes the directory entry of the segment just walked: its
    /// region snapshot is exactly the DEF_REGION records seen since the
    /// SEGMENT tag (the dictionary resets there).
    fn finalize_observed_segment(&mut self) {
        if let Some(segment) = self.observed_segments.last_mut() {
            if segment.regions.is_empty() {
                let mut ids: Vec<u32> = self.region_dict.iter().map(|r| r.index() as u32).collect();
                ids.sort_unstable();
                segment.regions = ids.into_iter().map(RegionId::new).collect();
            }
        }
    }

    /// Parses the directory trailer following the END record.
    fn read_directory(&mut self) -> Result<Vec<SegmentEntry>, CodecError> {
        let count = self.inner.read_varint()?;
        if count > 1_000_000 {
            return Err(CodecError::Corrupt {
                reason: "implausible segment count",
            });
        }
        let mut entries = Vec::with_capacity(count.min(4096) as usize);
        for _ in 0..count {
            let byte_offset = self.inner.read_varint()?;
            let first_cycle = self.inner.read_varint()?;
            let accesses = self.inner.read_varint()?;
            let region_count = self.inner.read_varint()?;
            if region_count > 1_000_000 {
                return Err(CodecError::Corrupt {
                    reason: "implausible segment region count",
                });
            }
            let mut regions = Vec::with_capacity(region_count.min(4096) as usize);
            for _ in 0..region_count {
                let raw =
                    u32::try_from(self.inner.read_varint()?).map_err(|_| CodecError::Corrupt {
                        reason: "region id exceeds 32 bits",
                    })?;
                regions.push(RegionId::new(raw));
            }
            entries.push(SegmentEntry {
                byte_offset,
                first_cycle,
                accesses,
                regions,
            });
        }
        Ok(entries)
    }

    fn decode_access(&mut self, tag: u8) -> Result<TraceRecord, CodecError> {
        let processor = self.current_processor.ok_or(CodecError::Corrupt {
            reason: "access before any RUN record",
        })?;
        let kind = match tag & 0x03 {
            0 => AccessKind::InstrFetch,
            1 => AccessKind::Load,
            2 => AccessKind::Store,
            _ => {
                self.done = true;
                return Err(CodecError::Corrupt {
                    reason: "invalid access kind",
                });
            }
        };
        let (task, region, size) = if tag & FLAG_REPEAT != 0 {
            match (self.prev_task, self.prev_region) {
                (Some(t), Some(r)) => (t, r, self.prev_size),
                _ => {
                    self.done = true;
                    return Err(CodecError::Corrupt {
                        reason: "context-repeat access with no previous access",
                    });
                }
            }
        } else {
            let task_idx = self.inner.read_varint()?;
            let task = *self.task_dict.get(task_idx as usize).ok_or(
                CodecError::UndefinedDictionaryEntry {
                    kind: "task",
                    index: task_idx,
                },
            )?;
            let region_idx = self.inner.read_varint()?;
            let region = *self.region_dict.get(region_idx as usize).ok_or(
                CodecError::UndefinedDictionaryEntry {
                    kind: "region",
                    index: region_idx,
                },
            )?;
            let size =
                u16::try_from(self.inner.read_varint()?).map_err(|_| CodecError::Corrupt {
                    reason: "access size exceeds 16 bits",
                })?;
            (task, region, size)
        };
        let addr_delta = self.inner.read_zigzag()?;
        let addr = self.prev_addr.wrapping_add(addr_delta as u64);
        let gap = self.inner.read_varint()?;
        let cycle = self
            .prev_cycle
            .checked_add(gap)
            .ok_or(CodecError::Corrupt {
                reason: "cycle counter overflows",
            })?;

        self.prev_addr = addr;
        self.prev_cycle = cycle;
        self.prev_task = Some(task);
        self.prev_region = Some(region);
        self.prev_size = size;

        if self.version >= TRACE_VERSION {
            if let Some(segment) = self.observed_segments.last_mut() {
                segment.accesses += 1;
                if self.pending_first_cycle {
                    segment.first_cycle = cycle;
                    self.pending_first_cycle = false;
                }
            }
        }

        let access = Access {
            addr: Addr::new(addr),
            kind,
            size,
            task,
            region,
        };
        Ok(TraceRecord {
            processor,
            cycle,
            access,
        })
    }

    /// Decodes the whole remaining trace into per-processor runs, in global
    /// recorded order.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on corrupt input.
    pub fn collect_runs(&mut self) -> Result<Vec<TraceRun>, CodecError> {
        let mut runs: Vec<TraceRun> = Vec::new();
        while let Some(record) = self.next_record()? {
            match runs.last_mut() {
                Some(run) if run.processor == record.processor => {
                    run.accesses.push(record.access);
                }
                _ => runs.push(TraceRun {
                    processor: record.processor,
                    start_cycle: record.cycle,
                    accesses: vec![record.access],
                }),
            }
        }
        Ok(runs)
    }
}

impl<'a> TraceReader<&'a [u8]> {
    /// A reader over one sliced segment: no header, no END record — the
    /// slice begins with the SEGMENT tag (whose context reset makes the
    /// decode self-contained) and ends at the next segment's byte offset.
    fn for_segment(slice: &'a [u8], table_len: usize, processors: u32) -> Self {
        TraceReader {
            inner: ByteSource::new(slice),
            table: RegionTable::new(),
            table_len,
            processors,
            version: TRACE_VERSION,
            task_dict: Vec::new(),
            region_dict: Vec::new(),
            prev_addr: 0,
            prev_cycle: 0,
            prev_task: None,
            prev_region: None,
            prev_size: 0,
            current_processor: None,
            done: false,
            segment_mode: true,
            segment_open: false,
            observed_segments: Vec::new(),
            pending_first_cycle: false,
            directory: None,
            end_offset: 0,
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// A complete encoded trace held in memory: the self-contained scenario the
/// replay pipeline and the organisation sweeps consume.
///
/// Construction always validates the whole stream (a corrupt byte string is
/// rejected with a [`CodecError`], never a panic), so holders of an
/// `EncodedTrace` can decode it without error handling surprises.
///
/// The decoded runs are cached lazily, so a sweep replaying one `Arc`'d
/// trace across many organisations decodes it once.
#[derive(Debug, Clone)]
pub struct EncodedTrace {
    bytes: Vec<u8>,
    table: RegionTable,
    summary: TraceSummary,
    /// The v2 segment directory (empty for v1 streams and empty traces).
    directory: Vec<SegmentEntry>,
    /// Absolute offset of the END tag — the exclusive byte bound of the
    /// last segment.
    body_end: u64,
    decoded_runs: OnceLock<Vec<TraceRun>>,
}

/// Equality is over the encoded bytes (the table and summary derive from
/// them; the lazy run cache is ignored).
impl PartialEq for EncodedTrace {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for EncodedTrace {}

impl EncodedTrace {
    /// Validates `bytes` as a complete trace stream.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the stream is truncated, corrupt, of an
    /// unsupported version or has trailing garbage after its END record.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CodecError> {
        let mut reader = TraceReader::new(bytes.as_slice())?;
        // Validation must walk every record anyway, so keep the decoded
        // runs and seed the lazy cache — the stream is parsed exactly once.
        let decoded = reader.collect_runs()?;
        let accesses = decoded.iter().map(|r| r.accesses.len() as u64).sum();
        let runs = decoded.len() as u64;
        let processors = reader.processors();
        if reader.inner.has_more()? {
            return Err(CodecError::Corrupt {
                reason: "trailing bytes after END record",
            });
        }
        let directory = reader.directory.take().unwrap_or_default();
        let body_end = reader.end_offset;
        let segments = directory.len() as u64;
        let table = reader.table;
        let encoded_bytes = bytes.len() as u64;
        let decoded_runs = OnceLock::new();
        decoded_runs
            .set(decoded)
            .expect("freshly created cache is empty");
        Ok(EncodedTrace {
            bytes,
            table,
            summary: TraceSummary {
                accesses,
                runs,
                processors,
                encoded_bytes,
                segments,
            },
            directory,
            body_end,
            decoded_runs,
        })
    }

    /// Encodes a flat access stream attributed to one processor at cycle
    /// gaps of one (a convenience for tests and synthetic scenarios).
    ///
    /// # Errors
    ///
    /// Propagates encoder errors (which cannot occur for in-memory sinks
    /// with well-formed input).
    pub fn from_accesses(table: &RegionTable, accesses: &[Access]) -> Result<Self, CodecError> {
        let mut writer = TraceWriter::new(Vec::new(), table, 1)?;
        for (i, access) in accesses.iter().enumerate() {
            writer.record(0, i as u64, access);
        }
        let (bytes, _) = writer.finish()?;
        Self::from_bytes(bytes)
    }

    /// The raw encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Version of the trace IR this trace was encoded with.
    pub fn version(&self) -> u8 {
        // Validated at construction; byte 4 follows the 4-byte magic.
        self.bytes[4]
    }

    /// Content hash of the encoded bytes — the identity a curve sidecar
    /// (see [`crate::curves`]) embeds to prove it was measured over this
    /// trace.
    pub fn content_hash(&self) -> u64 {
        crate::curves::trace_content_hash(&self.bytes)
    }

    /// The region table embedded in the trace.
    pub fn table(&self) -> &RegionTable {
        &self.table
    }

    /// Counters describing the trace.
    pub fn summary(&self) -> TraceSummary {
        self.summary
    }

    /// Number of processors the trace was recorded on.
    pub fn processors(&self) -> u32 {
        self.summary.processors
    }

    /// Total number of accesses in the trace.
    pub fn accesses(&self) -> u64 {
        self.summary.accesses
    }

    /// Returns `true` if the trace contains no accesses.
    pub fn is_empty(&self) -> bool {
        self.summary.accesses == 0
    }

    /// The v2 segment directory: one entry per independently decodable
    /// segment. Empty for v1 streams and empty traces.
    pub fn segment_directory(&self) -> &[SegmentEntry] {
        &self.directory
    }

    /// Number of independently decodable segments.
    pub fn segment_count(&self) -> usize {
        self.directory.len()
    }

    /// Decodes one segment from its byte slice — no full-file pass, no
    /// state from any other segment (the SEGMENT tag opening the slice
    /// resets the whole codec context). Runs that span a segment
    /// boundary in [`runs`](EncodedTrace::runs) appear split here;
    /// re-merging adjacent same-processor runs at the seams
    /// ([`merge_segment_runs`]) reconstructs the full-stream
    /// decomposition exactly.
    ///
    /// # Panics
    ///
    /// Panics if `index >= segment_count()` (the directory is the bound).
    pub fn segment_runs(&self, index: usize) -> Vec<TraceRun> {
        let entry = &self.directory[index];
        let start = entry.byte_offset as usize;
        let end = self
            .directory
            .get(index + 1)
            .map(|next| next.byte_offset as usize)
            .unwrap_or(self.body_end as usize);
        let mut reader = TraceReader::for_segment(
            &self.bytes[start..end],
            self.table.len(),
            self.summary.processors,
        );
        // The same bytes passed full-stream validation and segment state
        // is self-contained, so a slice decode cannot fail.
        reader.collect_runs().expect("validated at construction")
    }

    /// Opens a streaming reader over the encoded bytes.
    pub fn reader(&self) -> TraceReader<&[u8]> {
        TraceReader::new(self.bytes.as_slice()).expect("validated at construction")
    }

    /// The trace decoded into per-processor runs in global recorded order.
    ///
    /// The decode happens once per trace and is cached, so replaying the
    /// same trace under many organisations pays the codec cost a single
    /// time.
    pub fn runs(&self) -> &[TraceRun] {
        self.decoded_runs.get_or_init(|| {
            self.reader()
                .collect_runs()
                .expect("validated at construction")
        })
    }

    /// Decodes the trace **segment-parallel**: every directory segment is
    /// sliced and decoded independently on up to `jobs` worker threads
    /// (each slice resets the codec context, so no segment waits on
    /// another), then the per-segment chunks are stitched back in
    /// directory order with [`merge_segment_runs`] — the result equals
    /// [`runs`](EncodedTrace::runs) run for run.
    ///
    /// Traces without a directory (v1 streams, empty traces) fall back to
    /// the cached serial decode. Note that [`from_bytes`] already pays one
    /// serial validation decode and seeds the `runs` cache, so this entry
    /// point wins only for consumers that slice a trace *without* holding
    /// its full validated form — it is the decode primitive the
    /// segment-jobs replay path and future mmap-style slicing build on.
    ///
    /// [`from_bytes`]: EncodedTrace::from_bytes
    pub fn segment_runs_parallel(&self, jobs: usize) -> Vec<TraceRun> {
        let count = self.segment_count();
        if count == 0 {
            return self.runs().to_vec();
        }
        let workers = jobs.max(1).min(count);
        let chunks: Vec<Vec<TraceRun>> = if workers <= 1 {
            (0..count).map(|i| self.segment_runs(i)).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Vec<TraceRun>>>> =
                (0..count).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        let chunk = self.segment_runs(index);
                        *slots[index].lock().expect("segment slot poisoned") = Some(chunk);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("segment slot poisoned")
                        .expect("every segment index was claimed by a worker")
                })
                .collect()
        };
        merge_segment_runs(chunks)
    }

    /// Writes the encoded bytes to a file (atomically: temp file +
    /// rename, so a concurrent reader never observes a torn trace).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), CodecError> {
        write_file_atomic(path.as_ref(), &self.bytes).map_err(CodecError::Io)
    }

    /// Reads and validates an encoded trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        Self::from_bytes(std::fs::read(path).map_err(CodecError::Io)?)
    }
}

/// Stitches per-segment run chunks (in directory order) back into the
/// full-stream run decomposition: a run opening a chunk continues the
/// previous chunk's last run when both belong to the same processor —
/// exactly the rule the full-stream [`TraceReader::collect_runs`] applies
/// at a segment seam (the seam itself never splits a run on cycle
/// grounds; only a processor change does).
pub fn merge_segment_runs(chunks: impl IntoIterator<Item = Vec<TraceRun>>) -> Vec<TraceRun> {
    let mut out: Vec<TraceRun> = Vec::new();
    for run in chunks.into_iter().flatten() {
        match out.last_mut() {
            Some(prev) if prev.processor == run.processor => {
                prev.accesses.extend(run.accesses);
            }
            _ => out.push(run),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{looping, strided, StreamParams};

    #[test]
    fn atomic_writes_replace_files_whole() {
        let dir = std::env::temp_dir().join(format!("compmem-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("value.bin");
        write_file_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_file_atomic(&path, b"second-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second-longer");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn table() -> RegionTable {
        let mut t = RegionTable::new();
        t.insert(
            "t0.data",
            RegionKind::TaskData {
                task: TaskId::new(0),
            },
            8 * 1024,
        )
        .unwrap();
        t.insert(
            "fifo.x",
            RegionKind::Fifo {
                buffer: BufferId::new(0),
            },
            1024,
        )
        .unwrap();
        t
    }

    fn sample_accesses(t: &RegionTable) -> Vec<Access> {
        let r0 = t.regions()[0].id;
        let mut out = looping(
            StreamParams::for_region(t.region(r0), TaskId::new(0)),
            4 * 1024,
            64,
            2,
        );
        out.extend(strided(
            StreamParams::for_region(&t.regions()[1].clone(), TaskId::new(1)),
            64,
            16,
        ));
        out
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let t = table();
        let accesses = sample_accesses(&t);
        let mut writer = TraceWriter::new(Vec::new(), &t, 2).unwrap();
        for (i, a) in accesses.iter().enumerate() {
            writer.record((i % 2) as u32, (i * 3) as u64, a);
        }
        let (bytes, summary) = writer.finish().unwrap();
        assert_eq!(summary.accesses, accesses.len() as u64);
        assert!(summary.runs >= 2, "two processors alternate");

        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.processors(), 2);
        let mut decoded = Vec::new();
        while let Some(rec) = reader.next_record().unwrap() {
            decoded.push(rec);
        }
        assert_eq!(decoded.len(), accesses.len());
        for (i, (rec, a)) in decoded.iter().zip(&accesses).enumerate() {
            assert_eq!(rec.access, *a, "access {i} diverged");
            assert_eq!(rec.processor, (i % 2) as u32);
            assert_eq!(rec.cycle, (i * 3) as u64);
        }
    }

    #[test]
    fn region_table_roundtrips_bit_for_bit() {
        let t = table();
        let writer = TraceWriter::new(Vec::new(), &t, 4).unwrap();
        let (bytes, _) = writer.finish().unwrap();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.table().len(), t.len());
        for (a, b) in t.iter().zip(reader.table().iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn encoding_is_compact() {
        let t = table();
        let accesses = sample_accesses(&t);
        let trace = EncodedTrace::from_accesses(&t, &accesses).unwrap();
        // Sequential same-context accesses should cost only a few bytes each
        // against 32 bytes for the in-memory record.
        assert!(
            trace.summary().bytes_per_access() < 8.0,
            "got {} bytes/access",
            trace.summary().bytes_per_access()
        );
    }

    #[test]
    fn runs_split_on_processor_change_and_clock_regression() {
        let t = table();
        let a = sample_accesses(&t);
        let mut writer = TraceWriter::new(Vec::new(), &t, 2).unwrap();
        writer.record(0, 100, &a[0]);
        writer.record(0, 110, &a[1]);
        writer.record(1, 50, &a[2]); // processor change
        writer.record(1, 40, &a[3]); // clock regression within a processor
        let (bytes, summary) = writer.finish().unwrap();
        assert_eq!(summary.runs, 3);
        let trace = EncodedTrace::from_bytes(bytes).unwrap();
        let runs = trace.runs();
        // The clock-regression run merges back into the previous processor-1
        // run when collected (same processor, contiguous).
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].processor, 0);
        assert_eq!(runs[0].start_cycle, 100);
        assert_eq!(runs[0].accesses.len(), 2);
        assert_eq!(runs[1].processor, 1);
        assert_eq!(runs[1].accesses.len(), 2);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = RegionTable::new();
        let trace = EncodedTrace::from_accesses(&t, &[]).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.runs().len(), 0);
        assert_eq!(trace.table().len(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let t = table();
        let accesses = sample_accesses(&t);
        let trace = EncodedTrace::from_accesses(&t, &accesses).unwrap();
        let dir = std::env::temp_dir().join("compmem-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cmt");
        trace.write_to(&path).unwrap();
        let back = EncodedTrace::read_from(&path).unwrap();
        assert_eq!(trace, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_inputs_error_instead_of_panicking() {
        let t = table();
        let accesses = sample_accesses(&t);
        let trace = EncodedTrace::from_accesses(&t, &accesses).unwrap();
        let good = trace.bytes().to_vec();

        // Truncations at every length must fail cleanly (or parse, for the
        // empty prefix of a still-valid stream — which cannot happen here
        // because the END record is mandatory).
        for cut in 0..good.len() {
            let err = EncodedTrace::from_bytes(good[..cut].to_vec());
            assert!(err.is_err(), "truncation at {cut} was accepted");
        }

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            EncodedTrace::from_bytes(bad),
            Err(CodecError::BadMagic { .. })
        ));

        // Wrong version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            EncodedTrace::from_bytes(bad),
            Err(CodecError::UnsupportedVersion { .. })
        ));

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0xff);
        assert!(matches!(
            EncodedTrace::from_bytes(bad),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn writer_surfaces_io_errors_at_finish() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(matches!(
            TraceWriter::new(FailingWriter, &RegionTable::new(), 1),
            Err(CodecError::Io(_))
        ));
    }

    /// Re-merges adjacent same-processor runs — what the full-stream
    /// `collect_runs` does across a segment seam.
    fn merge_runs(segments: Vec<Vec<TraceRun>>) -> Vec<TraceRun> {
        merge_segment_runs(segments)
    }

    #[test]
    fn segment_directory_roundtrips_and_slices_decode_independently() {
        let t = table();
        let accesses = sample_accesses(&t);
        // A tiny segment target forces many segments over the sample.
        let mut writer = TraceWriter::with_segment_accesses(Vec::new(), &t, 2, 16).unwrap();
        for (i, a) in accesses.iter().enumerate() {
            writer.record((i % 2) as u32, (i * 3) as u64, a);
        }
        let (bytes, summary) = writer.finish().unwrap();
        assert!(summary.segments > 3, "got {} segments", summary.segments);

        let trace = EncodedTrace::from_bytes(bytes).unwrap();
        assert_eq!(trace.version(), TRACE_VERSION);
        assert_eq!(trace.segment_count() as u64, summary.segments);
        let directory = trace.segment_directory();
        // Offsets are strictly increasing and the access counts cover the
        // stream exactly.
        for pair in directory.windows(2) {
            assert!(pair[0].byte_offset < pair[1].byte_offset);
        }
        let total: u64 = directory.iter().map(|s| s.accesses).sum();
        assert_eq!(total, accesses.len() as u64);
        // Every segment's first cycle matches its first decoded access,
        // and its region snapshot covers the regions the slice names.
        let mut all_runs = Vec::new();
        for (i, entry) in directory.iter().enumerate() {
            let runs = trace.segment_runs(i);
            let first = &runs[0];
            assert_eq!(first.start_cycle, entry.first_cycle, "segment {i}");
            let decoded: u64 = runs.iter().map(|r| r.accesses.len() as u64).sum();
            assert_eq!(decoded, entry.accesses, "segment {i}");
            for run in &runs {
                for access in &run.accesses {
                    assert!(
                        entry.regions.contains(&access.region),
                        "segment {i} snapshot misses {:?}",
                        access.region
                    );
                }
            }
            all_runs.push(runs);
        }
        // Concatenating the slice decodes (merging at the seams)
        // reconstructs the full-stream run decomposition bit for bit.
        assert_eq!(merge_runs(all_runs), trace.runs());
    }

    #[test]
    fn segment_parallel_decode_matches_the_serial_decode() {
        let t = table();
        let accesses = sample_accesses(&t);
        let mut writer = TraceWriter::with_segment_accesses(Vec::new(), &t, 2, 16).unwrap();
        for (i, a) in accesses.iter().enumerate() {
            writer.record((i % 2) as u32, (i * 3) as u64, a);
        }
        let (bytes, summary) = writer.finish().unwrap();
        assert!(summary.segments > 3);
        let trace = EncodedTrace::from_bytes(bytes).unwrap();
        for jobs in [1, 2, 4, 16] {
            assert_eq!(
                trace.segment_runs_parallel(jobs),
                trace.runs(),
                "jobs = {jobs}"
            );
        }

        // A v1 stream (no directory) falls back to the serial decode.
        let mut v1 = TraceWriter::v1_compat(Vec::new(), &t, 2).unwrap();
        for (i, a) in accesses.iter().enumerate() {
            v1.record((i % 2) as u32, (i * 3) as u64, a);
        }
        let (v1_bytes, _) = v1.finish().unwrap();
        let old = EncodedTrace::from_bytes(v1_bytes).unwrap();
        assert_eq!(old.segment_runs_parallel(4), old.runs());
    }

    #[test]
    fn v1_streams_stay_readable() {
        let t = table();
        let accesses = sample_accesses(&t);
        let mut v1 = TraceWriter::v1_compat(Vec::new(), &t, 2).unwrap();
        let mut v2 = TraceWriter::with_segment_accesses(Vec::new(), &t, 2, 16).unwrap();
        for (i, a) in accesses.iter().enumerate() {
            v1.record((i % 2) as u32, (i * 3) as u64, a);
            v2.record((i % 2) as u32, (i * 3) as u64, a);
        }
        let (v1_bytes, v1_summary) = v1.finish().unwrap();
        let (v2_bytes, _) = v2.finish().unwrap();
        assert_eq!(v1_summary.segments, 0);
        assert_eq!(v1_bytes[4], TRACE_VERSION_V1);

        let old = EncodedTrace::from_bytes(v1_bytes).unwrap();
        assert_eq!(old.version(), TRACE_VERSION_V1);
        assert_eq!(old.segment_count(), 0);
        assert!(old.segment_directory().is_empty());
        // Same accesses, same run decomposition — segmentation is purely
        // an encoding concern.
        let new = EncodedTrace::from_bytes(v2_bytes).unwrap();
        assert_eq!(old.runs(), new.runs());
    }

    #[test]
    fn v1_streams_reject_segment_records() {
        let t = table();
        let accesses = sample_accesses(&t);
        let mut writer = TraceWriter::v1_compat(Vec::new(), &t, 1).unwrap();
        writer.record(0, 0, &accesses[0]);
        let (mut bytes, _) = writer.finish().unwrap();
        // Splice a SEGMENT tag before the END record of the v1 stream.
        let end = bytes.len() - 1;
        bytes.insert(end, TAG_SEGMENT);
        assert!(matches!(
            EncodedTrace::from_bytes(bytes),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn corrupt_directory_is_rejected() {
        let t = table();
        let accesses = sample_accesses(&t);
        let mut writer = TraceWriter::with_segment_accesses(Vec::new(), &t, 2, 16).unwrap();
        for (i, a) in accesses.iter().enumerate() {
            writer.record((i % 2) as u32, (i * 3) as u64, a);
        }
        let (good, _) = writer.finish().unwrap();
        let trace = EncodedTrace::from_bytes(good.clone()).unwrap();
        let trailer_start = {
            // END tag position: last byte of the last segment's slice.
            let last = trace.segment_directory().last().unwrap();
            assert!(last.byte_offset < good.len() as u64);
            // Find END by decoding: body_end is not public, so locate the
            // trailer as everything after the last segment's bytes.
            let mut reader = TraceReader::new(good.as_slice()).unwrap();
            while reader.next_record().unwrap().is_some() {}
            reader.end_offset as usize
        };
        // Flipping any byte of the trailer (after END) must be caught by
        // the observed-vs-directory comparison or the trailer parser.
        for pos in trailer_start + 1..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            assert!(
                EncodedTrace::from_bytes(bad).is_err(),
                "trailer corruption at byte {pos} was accepted"
            );
        }
        // Truncating the trailer anywhere must fail too.
        for cut in trailer_start..good.len() {
            assert!(
                EncodedTrace::from_bytes(good[..cut].to_vec()).is_err(),
                "trailer truncation at {cut} was accepted"
            );
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = CodecError::Corrupt {
            reason: "unknown record tag",
        };
        assert!(e.to_string().contains("unknown record tag"));
        let e = CodecError::UndefinedDictionaryEntry {
            kind: "task",
            index: 7,
        };
        assert!(e.to_string().contains("task"));
    }
}
