//! The binary trace IR: compact record/replay encoding of access streams.
//!
//! Recording an application once and replaying the encoded trace many times
//! is how organisation sweeps avoid re-executing the workload functionally.
//! This module defines the on-disk / in-memory intermediate representation
//! (IR) of such traces, the streaming [`TraceWriter`] / [`TraceReader`]
//! pair, and the self-contained in-memory [`EncodedTrace`].
//!
//! # IR layout
//!
//! A trace is one byte stream:
//!
//! ```text
//! header  := magic "CMTR" | version u8 (=1) | region table | varint processors
//! regions := varint count | { varint name_len | name bytes
//!                            | kind tag u8 | [varint task-or-buffer id]
//!                            | varint size }*
//! body    := { record }* | END
//! record  := DEF_TASK   (0x01) varint raw_task_id
//!          | DEF_REGION (0x02) varint raw_region_id
//!          | RUN        (0x03) varint processor | zigzag cycle_delta
//!          | ACCESS     (0x80|flags) …
//! END     := 0x00
//! ```
//!
//! An `ACCESS` tag byte has bit 7 set; bits 0–1 carry the
//! [`AccessKind`] (0 = ifetch, 1 = load, 2 = store) and bit 2 is the
//! *context-repeat* flag. When the flag is clear, the record continues with
//! the task dictionary index, the region dictionary index and the access
//! size (all varint); when it is set, task, region and size are inherited
//! from the previous access. Every access then stores its address as a
//! zigzag-encoded delta from the previous access's address, and its cycle
//! as a plain varint gap from the previous cycle of the same run.
//!
//! Tasks and regions are *dictionary* encoded: the first time a raw
//! [`TaskId`] / [`RegionId`] appears, the writer emits a `DEF_TASK` /
//! `DEF_REGION` record appending it to the (dense) dictionary, and all
//! later references are small dictionary indices. A `RUN` record starts a
//! new *run* — a maximal stretch of accesses issued by one processor in
//! recorded order — and re-anchors the cycle clock with a signed delta, so
//! interleaved per-processor streams with locally monotone clocks encode
//! compactly.
//!
//! The header embeds the application's [`RegionTable`] (regions are
//! rebuilt by replaying `insert` calls, which reproduces identical base
//! addresses), so an encoded trace is a *self-contained scenario*: the
//! partitioned L2 organisations can be built against `trace.table()`
//! without the original application.
//!
//! Decoding is strict: every branch is bounds-checked and corrupt input is
//! reported as a [`CodecError`], never a panic.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::OnceLock;

use crate::access::{Access, AccessKind};
use crate::addr::Addr;
use crate::region::{BufferId, RegionId, RegionKind, RegionTable, TaskId};

/// Magic bytes opening every encoded trace.
pub const TRACE_MAGIC: [u8; 4] = *b"CMTR";
/// Current version of the trace IR.
pub const TRACE_VERSION: u8 = 1;

const TAG_END: u8 = 0x00;
const TAG_DEF_TASK: u8 = 0x01;
const TAG_DEF_REGION: u8 = 0x02;
const TAG_RUN: u8 = 0x03;
const TAG_ACCESS: u8 = 0x80;
const FLAG_REPEAT: u8 = 0x04;

/// Longest legal LEB128 encoding of a `u64`.
const MAX_VARINT_BYTES: u32 = 10;

/// Errors produced while encoding or decoding traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// An I/O error from the underlying reader or writer.
    Io(std::io::Error),
    /// The stream does not start with the trace magic.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The stream's version is not supported by this reader.
    UnsupportedVersion {
        /// The version actually found.
        found: u8,
    },
    /// The stream is malformed.
    Corrupt {
        /// What was wrong.
        reason: &'static str,
    },
    /// A record referenced a dictionary entry that was never defined.
    UndefinedDictionaryEntry {
        /// `"task"` or `"region"`.
        kind: &'static str,
        /// The out-of-range dictionary index.
        index: u64,
    },
    /// The embedded region table could not be rebuilt.
    Region(crate::error::TraceError),
    /// The stream does not start with the curve-sidecar magic (it is not a
    /// `.curves` file).
    BadSidecarMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// A curve sidecar is well-formed but does not belong to the trace (or
    /// the profiling configuration) it was loaded for.
    SidecarMismatch {
        /// Which header field differed (`"trace hash"`,
        /// `"l1 configuration"`, `"resolution"`, `"window config"`).
        field: &'static str,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "trace i/o error: {e}"),
            CodecError::BadMagic { found } => {
                write!(f, "not a compmem trace (magic {found:02x?})")
            }
            CodecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported trace version {found} (expected {TRACE_VERSION})"
                )
            }
            CodecError::Corrupt { reason } => write!(f, "corrupt trace: {reason}"),
            CodecError::UndefinedDictionaryEntry { kind, index } => {
                write!(
                    f,
                    "corrupt trace: undefined {kind} dictionary entry {index}"
                )
            }
            CodecError::Region(e) => write!(f, "corrupt trace: invalid region table: {e}"),
            CodecError::BadSidecarMagic { found } => {
                write!(f, "not a compmem curve sidecar (magic {found:02x?})")
            }
            CodecError::SidecarMismatch { field } => {
                write!(f, "curve sidecar does not match the trace: {field} differs")
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::Region(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(value: std::io::Error) -> Self {
        CodecError::Io(value)
    }
}

impl From<crate::error::TraceError> for CodecError {
    fn from(value: crate::error::TraceError) -> Self {
        CodecError::Region(value)
    }
}

// ----- varint / zigzag primitives (shared with the curve sidecar codec) -----

pub(crate) fn write_varint<W: Write>(w: &mut W, mut value: u64) -> std::io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn write_zigzag<W: Write>(w: &mut W, value: i64) -> std::io::Result<()> {
    write_varint(w, ((value << 1) ^ (value >> 63)) as u64)
}

/// A buffered byte cursor over a reader.
///
/// The decoder consumes the stream byte by byte (varints, tags); going
/// through `Read::read` per byte costs more than the whole simulation, so
/// every read is served from a block buffer instead. Shared with the curve
/// sidecar codec (`crate::curves`), which has the same decoding needs.
#[derive(Debug)]
pub(crate) struct ByteSource<R: Read> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
}

impl<R: Read> ByteSource<R> {
    pub(crate) fn new(inner: R) -> Self {
        ByteSource {
            inner,
            buf: vec![0u8; 64 * 1024],
            pos: 0,
            len: 0,
        }
    }

    fn refill(&mut self) -> Result<(), CodecError> {
        loop {
            match self.inner.read(&mut self.buf) {
                Ok(n) => {
                    self.pos = 0;
                    self.len = n;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(CodecError::Io(e)),
            }
        }
    }

    #[inline]
    pub(crate) fn next_byte(&mut self) -> Result<Option<u8>, CodecError> {
        if self.pos < self.len {
            let byte = self.buf[self.pos];
            self.pos += 1;
            return Ok(Some(byte));
        }
        self.refill()?;
        if self.len == 0 {
            return Ok(None);
        }
        self.pos = 1;
        Ok(Some(self.buf[0]))
    }

    #[inline]
    pub(crate) fn require_byte(&mut self) -> Result<u8, CodecError> {
        self.next_byte()?.ok_or(CodecError::Corrupt {
            reason: "unexpected end of stream",
        })
    }

    pub(crate) fn read_exact(&mut self, out: &mut [u8]) -> Result<(), CodecError> {
        let mut written = 0;
        while written < out.len() {
            if self.pos == self.len {
                self.refill()?;
                if self.len == 0 {
                    return Err(CodecError::Corrupt {
                        reason: "unexpected end of stream",
                    });
                }
            }
            let take = (self.len - self.pos).min(out.len() - written);
            out[written..written + take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
            written += take;
        }
        Ok(())
    }

    /// Returns `true` if any byte remains (used to reject trailing
    /// garbage).
    pub(crate) fn has_more(&mut self) -> Result<bool, CodecError> {
        if self.pos < self.len {
            return Ok(true);
        }
        self.refill()?;
        Ok(self.len > 0)
    }

    pub(crate) fn read_varint(&mut self) -> Result<u64, CodecError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.require_byte()?;
            if shift >= 7 * MAX_VARINT_BYTES - 7 && byte > 1 {
                return Err(CodecError::Corrupt {
                    reason: "varint overflows 64 bits",
                });
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift >= 7 * MAX_VARINT_BYTES {
                return Err(CodecError::Corrupt {
                    reason: "varint longer than 10 bytes",
                });
            }
        }
    }

    fn read_zigzag(&mut self) -> Result<i64, CodecError> {
        let raw = self.read_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }
}

// ----- region table embedding -----

fn kind_tag(kind: RegionKind) -> (u8, Option<u64>) {
    match kind {
        RegionKind::TaskCode { task } => (0, Some(task.index() as u64)),
        RegionKind::TaskData { task } => (1, Some(task.index() as u64)),
        RegionKind::TaskBss { task } => (2, Some(task.index() as u64)),
        RegionKind::TaskHeap { task } => (3, Some(task.index() as u64)),
        RegionKind::TaskStack { task } => (4, Some(task.index() as u64)),
        RegionKind::Fifo { buffer } => (5, Some(buffer.index() as u64)),
        RegionKind::FrameBuffer { buffer } => (6, Some(buffer.index() as u64)),
        RegionKind::AppData => (7, None),
        RegionKind::AppBss => (8, None),
        RegionKind::RtData => (9, None),
        RegionKind::RtBss => (10, None),
    }
}

fn kind_from_tag<R: Read>(tag: u8, r: &mut ByteSource<R>) -> Result<RegionKind, CodecError> {
    let id = |r: &mut ByteSource<R>| -> Result<u32, CodecError> {
        u32::try_from(r.read_varint()?).map_err(|_| CodecError::Corrupt {
            reason: "region-kind owner id exceeds 32 bits",
        })
    };
    Ok(match tag {
        0 => RegionKind::TaskCode {
            task: TaskId::new(id(r)?),
        },
        1 => RegionKind::TaskData {
            task: TaskId::new(id(r)?),
        },
        2 => RegionKind::TaskBss {
            task: TaskId::new(id(r)?),
        },
        3 => RegionKind::TaskHeap {
            task: TaskId::new(id(r)?),
        },
        4 => RegionKind::TaskStack {
            task: TaskId::new(id(r)?),
        },
        5 => RegionKind::Fifo {
            buffer: BufferId::new(id(r)?),
        },
        6 => RegionKind::FrameBuffer {
            buffer: BufferId::new(id(r)?),
        },
        7 => RegionKind::AppData,
        8 => RegionKind::AppBss,
        9 => RegionKind::RtData,
        10 => RegionKind::RtBss,
        _ => {
            return Err(CodecError::Corrupt {
                reason: "unknown region-kind tag",
            })
        }
    })
}

fn write_region_table<W: Write>(w: &mut W, table: &RegionTable) -> std::io::Result<()> {
    write_varint(w, table.len() as u64)?;
    for region in table.iter() {
        write_varint(w, region.name.len() as u64)?;
        w.write_all(region.name.as_bytes())?;
        let (tag, payload) = kind_tag(region.kind);
        w.write_all(&[tag])?;
        if let Some(id) = payload {
            write_varint(w, id)?;
        }
        write_varint(w, region.size)?;
    }
    Ok(())
}

fn read_region_table<R: Read>(r: &mut ByteSource<R>) -> Result<RegionTable, CodecError> {
    let count = r.read_varint()?;
    // A region costs at least 3 bytes; anything claiming more regions than
    // bytes conceivably left is corrupt rather than worth allocating for.
    if count > 1_000_000 {
        return Err(CodecError::Corrupt {
            reason: "implausible region count",
        });
    }
    let mut table = RegionTable::new();
    for _ in 0..count {
        let name_len = r.read_varint()? as usize;
        if name_len > 4096 {
            return Err(CodecError::Corrupt {
                reason: "implausible region name length",
            });
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| CodecError::Corrupt {
            reason: "region name is not UTF-8",
        })?;
        let tag = r.require_byte()?;
        let kind = kind_from_tag(tag, r)?;
        let size = r.read_varint()?;
        // `insert` re-derives the identical base address (bases are the
        // running sum of line-rounded sizes), so the rebuilt table matches
        // the recorded one bit for bit.
        table.insert(name, kind, size)?;
    }
    Ok(table)
}

// ----- records -----

/// One decoded trace record: an access with its issue attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Processor that issued the access.
    pub processor: u32,
    /// Cycle at which the access issued.
    pub cycle: u64,
    /// The access itself.
    pub access: Access,
}

/// A maximal stretch of accesses issued by one processor in recorded order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRun {
    /// Processor that issued the run.
    pub processor: u32,
    /// Cycle at which the first access of the run issued.
    pub start_cycle: u64,
    /// The accesses, in issue order.
    pub accesses: Vec<Access>,
}

/// Counters describing an encoded trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total accesses encoded.
    pub accesses: u64,
    /// Number of runs (contiguous same-processor stretches).
    pub runs: u64,
    /// Number of processors the trace was recorded on.
    pub processors: u32,
    /// Encoded size in bytes (body and header).
    pub encoded_bytes: u64,
}

impl TraceSummary {
    /// Average encoded bytes per access (the raw in-memory record is 32 B).
    pub fn bytes_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.encoded_bytes as f64 / self.accesses as f64
        }
    }
}

struct EncodeContext {
    task_dict: HashMap<u32, u64>,
    region_dict: HashMap<u32, u64>,
    prev_addr: u64,
    prev_cycle: u64,
    prev_task: Option<TaskId>,
    prev_region: Option<RegionId>,
    prev_size: u16,
    current_processor: Option<u32>,
}

impl EncodeContext {
    fn new() -> Self {
        EncodeContext {
            task_dict: HashMap::new(),
            region_dict: HashMap::new(),
            prev_addr: 0,
            prev_cycle: 0,
            prev_task: None,
            prev_region: None,
            prev_size: 0,
            current_processor: None,
        }
    }
}

/// Streaming encoder of the trace IR.
///
/// `record` is infallible by signature so the writer can sit behind hot
/// recording paths; the first I/O error poisons the writer and is surfaced
/// by [`finish`](TraceWriter::finish).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
    ctx: EncodeContext,
    summary: TraceSummary,
    error: Option<CodecError>,
}

impl std::fmt::Debug for EncodeContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncodeContext")
            .field("tasks", &self.task_dict.len())
            .field("regions", &self.region_dict.len())
            .finish()
    }
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace: writes the header (magic, version, the embedded
    /// region table and the processor count) to `inner`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the header cannot be written.
    pub fn new(mut inner: W, table: &RegionTable, processors: u32) -> Result<Self, CodecError> {
        inner.write_all(&TRACE_MAGIC)?;
        inner.write_all(&[TRACE_VERSION])?;
        write_region_table(&mut inner, table)?;
        write_varint(&mut inner, u64::from(processors))?;
        Ok(TraceWriter {
            inner,
            ctx: EncodeContext::new(),
            summary: TraceSummary {
                processors,
                ..TraceSummary::default()
            },
            error: None,
        })
    }

    /// Records one access issued by `processor` at `cycle`.
    pub fn record(&mut self, processor: u32, cycle: u64, access: &Access) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.encode(processor, cycle, access) {
            self.error = Some(e);
        }
    }

    /// Records a whole batch of accesses issued by `processor` starting at
    /// `cycle` (they share the batch's issue cycle).
    pub fn record_all(&mut self, processor: u32, cycle: u64, accesses: &[Access]) {
        for access in accesses {
            self.record(processor, cycle, access);
        }
    }

    fn encode(&mut self, processor: u32, cycle: u64, access: &Access) -> Result<(), CodecError> {
        // A processor change — or a clock that moved backwards, which plain
        // varint gaps cannot express — opens a new run.
        if self.ctx.current_processor != Some(processor) || cycle < self.ctx.prev_cycle {
            self.inner.write_all(&[TAG_RUN])?;
            write_varint(&mut self.inner, u64::from(processor))?;
            write_zigzag(
                &mut self.inner,
                cycle.wrapping_sub(self.ctx.prev_cycle) as i64,
            )?;
            self.ctx.current_processor = Some(processor);
            self.ctx.prev_cycle = cycle;
            self.summary.runs += 1;
        }

        let task_raw = access.task.index() as u32;
        if !self.ctx.task_dict.contains_key(&task_raw) {
            let idx = self.ctx.task_dict.len() as u64;
            self.ctx.task_dict.insert(task_raw, idx);
            self.inner.write_all(&[TAG_DEF_TASK])?;
            write_varint(&mut self.inner, u64::from(task_raw))?;
        }
        let region_raw = access.region.index() as u32;
        if !self.ctx.region_dict.contains_key(&region_raw) {
            let idx = self.ctx.region_dict.len() as u64;
            self.ctx.region_dict.insert(region_raw, idx);
            self.inner.write_all(&[TAG_DEF_REGION])?;
            write_varint(&mut self.inner, u64::from(region_raw))?;
        }

        let kind_bits = match access.kind {
            AccessKind::InstrFetch => 0u8,
            AccessKind::Load => 1,
            AccessKind::Store => 2,
        };
        let repeat = self.ctx.prev_task == Some(access.task)
            && self.ctx.prev_region == Some(access.region)
            && self.ctx.prev_size == access.size;
        let mut tag = TAG_ACCESS | kind_bits;
        if repeat {
            tag |= FLAG_REPEAT;
        }
        self.inner.write_all(&[tag])?;
        if !repeat {
            write_varint(&mut self.inner, self.ctx.task_dict[&task_raw])?;
            write_varint(&mut self.inner, self.ctx.region_dict[&region_raw])?;
            write_varint(&mut self.inner, u64::from(access.size))?;
        }
        write_zigzag(
            &mut self.inner,
            access.addr.value().wrapping_sub(self.ctx.prev_addr) as i64,
        )?;
        write_varint(&mut self.inner, cycle - self.ctx.prev_cycle)?;

        self.ctx.prev_addr = access.addr.value();
        self.ctx.prev_cycle = cycle;
        self.ctx.prev_task = Some(access.task);
        self.ctx.prev_region = Some(access.region);
        self.ctx.prev_size = access.size;
        self.summary.accesses += 1;
        Ok(())
    }

    /// Terminates the stream and returns the writer together with the
    /// summary counters.
    ///
    /// # Errors
    ///
    /// Surfaces the first error hit while recording, or the final flush
    /// error.
    pub fn finish(mut self) -> Result<(W, TraceSummary), CodecError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.inner.write_all(&[TAG_END])?;
        self.inner.flush()?;
        Ok((self.inner, self.summary))
    }
}

/// Streaming decoder of the trace IR.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: ByteSource<R>,
    table: RegionTable,
    processors: u32,
    task_dict: Vec<TaskId>,
    region_dict: Vec<RegionId>,
    prev_addr: u64,
    prev_cycle: u64,
    prev_task: Option<TaskId>,
    prev_region: Option<RegionId>,
    prev_size: u16,
    current_processor: Option<u32>,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace: parses and validates the header.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for I/O failures, a wrong magic or version,
    /// or a corrupt region table.
    pub fn new(inner: R) -> Result<Self, CodecError> {
        let mut inner = ByteSource::new(inner);
        let mut magic = [0u8; 4];
        inner
            .read_exact(&mut magic)
            .map_err(|_| CodecError::Corrupt {
                reason: "stream shorter than the magic",
            })?;
        if magic != TRACE_MAGIC {
            return Err(CodecError::BadMagic { found: magic });
        }
        let version = inner.require_byte()?;
        if version != TRACE_VERSION {
            return Err(CodecError::UnsupportedVersion { found: version });
        }
        let table = read_region_table(&mut inner)?;
        let processors = u32::try_from(inner.read_varint()?).map_err(|_| CodecError::Corrupt {
            reason: "processor count exceeds 32 bits",
        })?;
        Ok(TraceReader {
            inner,
            table,
            processors,
            task_dict: Vec::new(),
            region_dict: Vec::new(),
            prev_addr: 0,
            prev_cycle: 0,
            prev_task: None,
            prev_region: None,
            prev_size: 0,
            current_processor: None,
            done: false,
        })
    }

    /// The region table embedded in the trace header.
    pub fn table(&self) -> &RegionTable {
        &self.table
    }

    /// Number of processors the trace was recorded on.
    pub fn processors(&self) -> u32 {
        self.processors
    }

    /// Version of the trace IR this stream was encoded with.
    pub fn version(&self) -> u8 {
        // `new` rejects every version but the current one.
        TRACE_VERSION
    }

    /// Decodes the next access record, or `None` at the end of the trace.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on corrupt input; the reader is then
    /// exhausted.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, CodecError> {
        if self.done {
            return Ok(None);
        }
        loop {
            let tag = match self.inner.next_byte()? {
                Some(t) => t,
                None => {
                    self.done = true;
                    return Err(CodecError::Corrupt {
                        reason: "stream ends without an END record",
                    });
                }
            };
            match tag {
                TAG_END => {
                    self.done = true;
                    return Ok(None);
                }
                TAG_DEF_TASK => {
                    let raw = u32::try_from(self.inner.read_varint()?).map_err(|_| {
                        CodecError::Corrupt {
                            reason: "task id exceeds 32 bits",
                        }
                    })?;
                    self.task_dict.push(TaskId::new(raw));
                }
                TAG_DEF_REGION => {
                    let raw = u32::try_from(self.inner.read_varint()?).map_err(|_| {
                        CodecError::Corrupt {
                            reason: "region id exceeds 32 bits",
                        }
                    })?;
                    // A trace is a self-contained scenario: every region an
                    // access names must exist in the embedded table, or
                    // consumers indexing per-region state (the profiler,
                    // the profiling organisation) would be handed a bogus
                    // index.
                    if raw as usize >= self.table.len() {
                        self.done = true;
                        return Err(CodecError::Corrupt {
                            reason: "region id outside the embedded region table",
                        });
                    }
                    self.region_dict.push(RegionId::new(raw));
                }
                TAG_RUN => {
                    let processor = u32::try_from(self.inner.read_varint()?).map_err(|_| {
                        CodecError::Corrupt {
                            reason: "processor id exceeds 32 bits",
                        }
                    })?;
                    let delta = self.inner.read_zigzag()?;
                    self.current_processor = Some(processor);
                    self.prev_cycle = self.prev_cycle.wrapping_add(delta as u64);
                }
                t if t & TAG_ACCESS != 0 => return self.decode_access(t).map(Some),
                _ => {
                    self.done = true;
                    return Err(CodecError::Corrupt {
                        reason: "unknown record tag",
                    });
                }
            }
        }
    }

    fn decode_access(&mut self, tag: u8) -> Result<TraceRecord, CodecError> {
        let processor = self.current_processor.ok_or(CodecError::Corrupt {
            reason: "access before any RUN record",
        })?;
        let kind = match tag & 0x03 {
            0 => AccessKind::InstrFetch,
            1 => AccessKind::Load,
            2 => AccessKind::Store,
            _ => {
                self.done = true;
                return Err(CodecError::Corrupt {
                    reason: "invalid access kind",
                });
            }
        };
        let (task, region, size) = if tag & FLAG_REPEAT != 0 {
            match (self.prev_task, self.prev_region) {
                (Some(t), Some(r)) => (t, r, self.prev_size),
                _ => {
                    self.done = true;
                    return Err(CodecError::Corrupt {
                        reason: "context-repeat access with no previous access",
                    });
                }
            }
        } else {
            let task_idx = self.inner.read_varint()?;
            let task = *self.task_dict.get(task_idx as usize).ok_or(
                CodecError::UndefinedDictionaryEntry {
                    kind: "task",
                    index: task_idx,
                },
            )?;
            let region_idx = self.inner.read_varint()?;
            let region = *self.region_dict.get(region_idx as usize).ok_or(
                CodecError::UndefinedDictionaryEntry {
                    kind: "region",
                    index: region_idx,
                },
            )?;
            let size =
                u16::try_from(self.inner.read_varint()?).map_err(|_| CodecError::Corrupt {
                    reason: "access size exceeds 16 bits",
                })?;
            (task, region, size)
        };
        let addr_delta = self.inner.read_zigzag()?;
        let addr = self.prev_addr.wrapping_add(addr_delta as u64);
        let gap = self.inner.read_varint()?;
        let cycle = self
            .prev_cycle
            .checked_add(gap)
            .ok_or(CodecError::Corrupt {
                reason: "cycle counter overflows",
            })?;

        self.prev_addr = addr;
        self.prev_cycle = cycle;
        self.prev_task = Some(task);
        self.prev_region = Some(region);
        self.prev_size = size;

        let access = Access {
            addr: Addr::new(addr),
            kind,
            size,
            task,
            region,
        };
        Ok(TraceRecord {
            processor,
            cycle,
            access,
        })
    }

    /// Decodes the whole remaining trace into per-processor runs, in global
    /// recorded order.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on corrupt input.
    pub fn collect_runs(&mut self) -> Result<Vec<TraceRun>, CodecError> {
        let mut runs: Vec<TraceRun> = Vec::new();
        while let Some(record) = self.next_record()? {
            match runs.last_mut() {
                Some(run) if run.processor == record.processor => {
                    run.accesses.push(record.access);
                }
                _ => runs.push(TraceRun {
                    processor: record.processor,
                    start_cycle: record.cycle,
                    accesses: vec![record.access],
                }),
            }
        }
        Ok(runs)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// A complete encoded trace held in memory: the self-contained scenario the
/// replay pipeline and the organisation sweeps consume.
///
/// Construction always validates the whole stream (a corrupt byte string is
/// rejected with a [`CodecError`], never a panic), so holders of an
/// `EncodedTrace` can decode it without error handling surprises.
///
/// The decoded runs are cached lazily, so a sweep replaying one `Arc`'d
/// trace across many organisations decodes it once.
#[derive(Debug, Clone)]
pub struct EncodedTrace {
    bytes: Vec<u8>,
    table: RegionTable,
    summary: TraceSummary,
    decoded_runs: OnceLock<Vec<TraceRun>>,
}

/// Equality is over the encoded bytes (the table and summary derive from
/// them; the lazy run cache is ignored).
impl PartialEq for EncodedTrace {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for EncodedTrace {}

impl EncodedTrace {
    /// Validates `bytes` as a complete trace stream.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the stream is truncated, corrupt, of an
    /// unsupported version or has trailing garbage after its END record.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CodecError> {
        let mut reader = TraceReader::new(bytes.as_slice())?;
        // Validation must walk every record anyway, so keep the decoded
        // runs and seed the lazy cache — the stream is parsed exactly once.
        let decoded = reader.collect_runs()?;
        let accesses = decoded.iter().map(|r| r.accesses.len() as u64).sum();
        let runs = decoded.len() as u64;
        let processors = reader.processors();
        if reader.inner.has_more()? {
            return Err(CodecError::Corrupt {
                reason: "trailing bytes after END record",
            });
        }
        let table = reader.table;
        let encoded_bytes = bytes.len() as u64;
        let decoded_runs = OnceLock::new();
        decoded_runs
            .set(decoded)
            .expect("freshly created cache is empty");
        Ok(EncodedTrace {
            bytes,
            table,
            summary: TraceSummary {
                accesses,
                runs,
                processors,
                encoded_bytes,
            },
            decoded_runs,
        })
    }

    /// Encodes a flat access stream attributed to one processor at cycle
    /// gaps of one (a convenience for tests and synthetic scenarios).
    ///
    /// # Errors
    ///
    /// Propagates encoder errors (which cannot occur for in-memory sinks
    /// with well-formed input).
    pub fn from_accesses(table: &RegionTable, accesses: &[Access]) -> Result<Self, CodecError> {
        let mut writer = TraceWriter::new(Vec::new(), table, 1)?;
        for (i, access) in accesses.iter().enumerate() {
            writer.record(0, i as u64, access);
        }
        let (bytes, _) = writer.finish()?;
        Self::from_bytes(bytes)
    }

    /// The raw encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Version of the trace IR this trace was encoded with.
    pub fn version(&self) -> u8 {
        // Validated at construction; byte 4 follows the 4-byte magic.
        self.bytes[4]
    }

    /// Content hash of the encoded bytes — the identity a curve sidecar
    /// (see [`crate::curves`]) embeds to prove it was measured over this
    /// trace.
    pub fn content_hash(&self) -> u64 {
        crate::curves::trace_content_hash(&self.bytes)
    }

    /// The region table embedded in the trace.
    pub fn table(&self) -> &RegionTable {
        &self.table
    }

    /// Counters describing the trace.
    pub fn summary(&self) -> TraceSummary {
        self.summary
    }

    /// Number of processors the trace was recorded on.
    pub fn processors(&self) -> u32 {
        self.summary.processors
    }

    /// Total number of accesses in the trace.
    pub fn accesses(&self) -> u64 {
        self.summary.accesses
    }

    /// Returns `true` if the trace contains no accesses.
    pub fn is_empty(&self) -> bool {
        self.summary.accesses == 0
    }

    /// Opens a streaming reader over the encoded bytes.
    pub fn reader(&self) -> TraceReader<&[u8]> {
        TraceReader::new(self.bytes.as_slice()).expect("validated at construction")
    }

    /// The trace decoded into per-processor runs in global recorded order.
    ///
    /// The decode happens once per trace and is cached, so replaying the
    /// same trace under many organisations pays the codec cost a single
    /// time.
    pub fn runs(&self) -> &[TraceRun] {
        self.decoded_runs.get_or_init(|| {
            self.reader()
                .collect_runs()
                .expect("validated at construction")
        })
    }

    /// Writes the encoded bytes to a file.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), CodecError> {
        std::fs::write(path, &self.bytes).map_err(CodecError::Io)
    }

    /// Reads and validates an encoded trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        Self::from_bytes(std::fs::read(path).map_err(CodecError::Io)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{looping, strided, StreamParams};

    fn table() -> RegionTable {
        let mut t = RegionTable::new();
        t.insert(
            "t0.data",
            RegionKind::TaskData {
                task: TaskId::new(0),
            },
            8 * 1024,
        )
        .unwrap();
        t.insert(
            "fifo.x",
            RegionKind::Fifo {
                buffer: BufferId::new(0),
            },
            1024,
        )
        .unwrap();
        t
    }

    fn sample_accesses(t: &RegionTable) -> Vec<Access> {
        let r0 = t.regions()[0].id;
        let mut out = looping(
            StreamParams::for_region(t.region(r0), TaskId::new(0)),
            4 * 1024,
            64,
            2,
        );
        out.extend(strided(
            StreamParams::for_region(&t.regions()[1].clone(), TaskId::new(1)),
            64,
            16,
        ));
        out
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let t = table();
        let accesses = sample_accesses(&t);
        let mut writer = TraceWriter::new(Vec::new(), &t, 2).unwrap();
        for (i, a) in accesses.iter().enumerate() {
            writer.record((i % 2) as u32, (i * 3) as u64, a);
        }
        let (bytes, summary) = writer.finish().unwrap();
        assert_eq!(summary.accesses, accesses.len() as u64);
        assert!(summary.runs >= 2, "two processors alternate");

        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.processors(), 2);
        let mut decoded = Vec::new();
        while let Some(rec) = reader.next_record().unwrap() {
            decoded.push(rec);
        }
        assert_eq!(decoded.len(), accesses.len());
        for (i, (rec, a)) in decoded.iter().zip(&accesses).enumerate() {
            assert_eq!(rec.access, *a, "access {i} diverged");
            assert_eq!(rec.processor, (i % 2) as u32);
            assert_eq!(rec.cycle, (i * 3) as u64);
        }
    }

    #[test]
    fn region_table_roundtrips_bit_for_bit() {
        let t = table();
        let writer = TraceWriter::new(Vec::new(), &t, 4).unwrap();
        let (bytes, _) = writer.finish().unwrap();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.table().len(), t.len());
        for (a, b) in t.iter().zip(reader.table().iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn encoding_is_compact() {
        let t = table();
        let accesses = sample_accesses(&t);
        let trace = EncodedTrace::from_accesses(&t, &accesses).unwrap();
        // Sequential same-context accesses should cost only a few bytes each
        // against 32 bytes for the in-memory record.
        assert!(
            trace.summary().bytes_per_access() < 8.0,
            "got {} bytes/access",
            trace.summary().bytes_per_access()
        );
    }

    #[test]
    fn runs_split_on_processor_change_and_clock_regression() {
        let t = table();
        let a = sample_accesses(&t);
        let mut writer = TraceWriter::new(Vec::new(), &t, 2).unwrap();
        writer.record(0, 100, &a[0]);
        writer.record(0, 110, &a[1]);
        writer.record(1, 50, &a[2]); // processor change
        writer.record(1, 40, &a[3]); // clock regression within a processor
        let (bytes, summary) = writer.finish().unwrap();
        assert_eq!(summary.runs, 3);
        let trace = EncodedTrace::from_bytes(bytes).unwrap();
        let runs = trace.runs();
        // The clock-regression run merges back into the previous processor-1
        // run when collected (same processor, contiguous).
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].processor, 0);
        assert_eq!(runs[0].start_cycle, 100);
        assert_eq!(runs[0].accesses.len(), 2);
        assert_eq!(runs[1].processor, 1);
        assert_eq!(runs[1].accesses.len(), 2);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = RegionTable::new();
        let trace = EncodedTrace::from_accesses(&t, &[]).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.runs().len(), 0);
        assert_eq!(trace.table().len(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let t = table();
        let accesses = sample_accesses(&t);
        let trace = EncodedTrace::from_accesses(&t, &accesses).unwrap();
        let dir = std::env::temp_dir().join("compmem-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cmt");
        trace.write_to(&path).unwrap();
        let back = EncodedTrace::read_from(&path).unwrap();
        assert_eq!(trace, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_inputs_error_instead_of_panicking() {
        let t = table();
        let accesses = sample_accesses(&t);
        let trace = EncodedTrace::from_accesses(&t, &accesses).unwrap();
        let good = trace.bytes().to_vec();

        // Truncations at every length must fail cleanly (or parse, for the
        // empty prefix of a still-valid stream — which cannot happen here
        // because the END record is mandatory).
        for cut in 0..good.len() {
            let err = EncodedTrace::from_bytes(good[..cut].to_vec());
            assert!(err.is_err(), "truncation at {cut} was accepted");
        }

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            EncodedTrace::from_bytes(bad),
            Err(CodecError::BadMagic { .. })
        ));

        // Wrong version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            EncodedTrace::from_bytes(bad),
            Err(CodecError::UnsupportedVersion { .. })
        ));

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0xff);
        assert!(matches!(
            EncodedTrace::from_bytes(bad),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn writer_surfaces_io_errors_at_finish() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(matches!(
            TraceWriter::new(FailingWriter, &RegionTable::new(), 1),
            Err(CodecError::Io(_))
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = CodecError::Corrupt {
            reason: "unknown record tag",
        };
        assert!(e.to_string().contains("unknown record tag"));
        let e = CodecError::UndefinedDictionaryEntry {
            kind: "task",
            index: 7,
        };
        assert!(e.to_string().contains("task"));
    }
}
