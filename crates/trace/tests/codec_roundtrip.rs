//! Property tests of the binary trace IR: encode→decode is lossless for
//! arbitrary access streams, and corrupt input fails with an error, never
//! a panic.

use proptest::prelude::*;

use compmem_trace::codec::{CodecError, EncodedTrace, TraceReader, TraceWriter};
use compmem_trace::{Access, AccessKind, Addr, RegionId, TaskId};

/// Strategy ingredients for one arbitrary access: address, kind selector,
/// size selector, task id, region id, cycle gap.
type RawAccess = (u64, u8, u8, u32, u32, u64);

fn access_strategy() -> impl Strategy<Value = Vec<RawAccess>> {
    prop::collection::vec(
        // Addresses across the whole 48-bit range force large positive and
        // negative deltas; tasks/regions from a small pool exercise the
        // dictionary and the context-repeat flag; gaps up to 2^20 exercise
        // multi-byte varints.
        (
            0u64..(1 << 48),
            0u8..3,
            0u8..4,
            0u32..6,
            0u32..9,
            0u64..(1 << 20),
        ),
        1..200,
    )
}

/// A region table covering the generator's region-id pool (0..9): the
/// codec validates that every region an access names exists in the
/// embedded table, so the arbitrary streams must draw from real regions.
fn region_table() -> compmem_trace::RegionTable {
    let mut table = compmem_trace::RegionTable::new();
    for r in 0..9u32 {
        table
            .insert(
                format!("r{r}"),
                compmem_trace::RegionKind::TaskData {
                    task: TaskId::new(r),
                },
                1 << 20,
            )
            .unwrap();
    }
    table
}

fn materialise(raw: &[RawAccess], processors: u32) -> Vec<(u32, u64, Access)> {
    let mut cycle = 0u64;
    raw.iter()
        .enumerate()
        .map(|(i, &(addr, kind, size, task, region, gap))| {
            let kind = match kind {
                0 => AccessKind::InstrFetch,
                1 => AccessKind::Load,
                _ => AccessKind::Store,
            };
            let size = [1u16, 2, 4, 64][size as usize];
            let access = Access {
                addr: Addr::new(addr),
                kind,
                size,
                task: TaskId::new(task),
                region: RegionId::new(region),
            };
            let processor = (i as u32) % processors;
            cycle += gap;
            (processor, cycle, access)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding and decoding an arbitrary access stream preserves every
    /// field: addresses, kinds, sizes, tasks, regions, processors and
    /// cycles (i.e. all cycle gaps).
    #[test]
    fn roundtrip_is_lossless(
        raw in access_strategy(),
        processors in 1u32..5,
    ) {
        let records = materialise(&raw, processors);
        let table = region_table();
        let mut writer = TraceWriter::new(Vec::new(), &table, processors).unwrap();
        for (processor, cycle, access) in &records {
            writer.record(*processor, *cycle, access);
        }
        let (bytes, summary) = writer.finish().unwrap();
        prop_assert_eq!(summary.accesses, records.len() as u64);

        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        prop_assert_eq!(reader.processors(), processors);
        let mut decoded = Vec::new();
        while let Some(record) = reader.next_record().unwrap() {
            decoded.push(record);
        }
        prop_assert_eq!(decoded.len(), records.len());
        for (record, (processor, cycle, access)) in decoded.iter().zip(&records) {
            prop_assert_eq!(record.processor, *processor);
            prop_assert_eq!(record.cycle, *cycle);
            prop_assert_eq!(record.access, *access);
        }

        // The validated in-memory form agrees and its run decomposition
        // covers every access exactly once, in order.
        let trace = EncodedTrace::from_bytes(bytes).unwrap();
        prop_assert_eq!(trace.accesses(), records.len() as u64);
        let replayed: Vec<Access> = trace
            .runs()
            .iter()
            .flat_map(|run| run.accesses.iter().copied())
            .collect();
        let originals: Vec<Access> = records.iter().map(|(_, _, a)| *a).collect();
        prop_assert_eq!(replayed, originals);
    }

    /// Flipping any single byte of a valid stream (or truncating it) must
    /// produce `Err` or a different-but-valid decode — never a panic.
    #[test]
    fn corrupt_input_errors_instead_of_panicking(
        raw in access_strategy(),
        flip_pos_seed in 0usize..10_000,
        flip_bits in 1u8..=255,
    ) {
        let records = materialise(&raw, 2);
        let table = region_table();
        let mut writer = TraceWriter::new(Vec::new(), &table, 2).unwrap();
        for (processor, cycle, access) in &records {
            writer.record(*processor, *cycle, access);
        }
        let (bytes, _) = writer.finish().unwrap();

        // Single-byte corruption anywhere in the stream.
        let mut corrupt = bytes.clone();
        let pos = flip_pos_seed % corrupt.len();
        corrupt[pos] ^= flip_bits;
        match EncodedTrace::from_bytes(corrupt) {
            // Errors are expected; a successful parse (the flip happened to
            // produce another valid stream, e.g. inside an address delta)
            // must still be internally consistent.
            Err(CodecError::Io(_)) => prop_assert!(false, "no I/O happens in memory"),
            Err(_) => {}
            Ok(trace) => {
                let decoded: u64 = trace.runs().iter().map(|r| r.accesses.len() as u64).sum();
                prop_assert_eq!(decoded, trace.accesses());
            }
        }

        // Truncation at the corruption point must error (END is mandatory).
        let truncated = bytes[..pos].to_vec();
        prop_assert!(EncodedTrace::from_bytes(truncated).is_err());
    }
}
