//! Property tests of the workload zoo: identical specs produce
//! byte-identical traces, different seeds produce different traces, and
//! every generated trace is a valid v2 stream — codec-validated,
//! segment-decodable, provenance-round-trippable.

use proptest::prelude::*;

use compmem_trace::codec::EncodedTrace;
use compmem_trace::gen::{generate, parse_region_name, provenance, GenKind, GenSpec, GenTask};

/// Raw ingredients of one arbitrary task: family selector, two footprint
/// line counts, a phase length and an access budget. Footprints stay in
/// whole lines (64 B to 16 KB) so every size is representable.
type RawTask = (u8, u64, u64, u64, u64);

fn raw_tasks() -> impl Strategy<Value = Vec<RawTask>> {
    prop::collection::vec((0u8..4, 1u64..257, 1u64..257, 1u64..513, 1u64..2001), 1..4)
}

fn build_spec(seed: u64, cycles_per_access: u64, raw: &[RawTask]) -> GenSpec {
    let tasks = raw
        .iter()
        .map(|&(family, lines_a, lines_b, phase, accesses)| {
            let kind = match family {
                0 => GenKind::Zipf {
                    working_set_bytes: lines_a * 64,
                },
                1 => GenKind::Scan {
                    footprint_bytes: lines_a * 64,
                },
                2 => GenKind::Chase {
                    working_set_bytes: lines_a * 64,
                },
                _ => GenKind::Phased {
                    hot_bytes: lines_a * 64,
                    scan_bytes: lines_b * 64,
                    phase_accesses: phase,
                },
            };
            GenTask { kind, accesses }
        })
        .collect();
    GenSpec {
        seed,
        cycles_per_access,
        tasks,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical seed + params ⇒ byte-identical traces, equal hashes.
    #[test]
    fn identical_specs_generate_byte_identical_traces(
        seed in 0u64..=u64::MAX,
        cycles in 1u64..9,
        raw in raw_tasks(),
    ) {
        let spec = build_spec(seed, cycles, &raw);
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        prop_assert_eq!(a.bytes(), b.bytes());
        prop_assert_eq!(a.content_hash(), b.content_hash());
    }

    /// A different seed changes the bytes whenever any task family
    /// actually consumes the seed (scans and phased regimes are pure
    /// functions of the index, so seed-free specs are exempt).
    #[test]
    fn different_seeds_generate_different_traces(
        seed in 0u64..=u64::MAX,
        cycles in 1u64..9,
        raw in raw_tasks(),
    ) {
        let spec = build_spec(seed, cycles, &raw);
        prop_assume!(spec.tasks.iter().any(|t| t.kind.is_seeded()));
        // A one-line zipf/chase working set has a single possible stream;
        // require at least two lines somewhere seeded for the seed to
        // have observable effect.
        prop_assume!(spec
            .tasks
            .iter()
            .any(|t| t.kind.is_seeded() && t.kind.footprint_bytes() > 64));
        let other = GenSpec {
            seed: seed.wrapping_add(1),
            ..spec.clone()
        };
        let a = generate(&spec).unwrap();
        let b = generate(&other).unwrap();
        prop_assert!(a.bytes() != b.bytes(), "seed change left bytes identical");
        prop_assert!(a.content_hash() != b.content_hash());
    }

    /// Every generated trace passes strict codec validation and decodes
    /// segment by segment to exactly its access count.
    #[test]
    fn generated_traces_validate_and_decode_segment_by_segment(
        seed in 0u64..=u64::MAX,
        cycles in 1u64..9,
        raw in raw_tasks(),
    ) {
        let spec = build_spec(seed, cycles, &raw);
        let trace = generate(&spec).unwrap();
        prop_assert_eq!(trace.summary().accesses, spec.total_accesses());
        prop_assert_eq!(trace.processors(), spec.tasks.len() as u32);

        // Re-validate the raw bytes through the strict entry point.
        let revalidated = EncodedTrace::from_bytes(trace.bytes().to_vec()).unwrap();
        prop_assert_eq!(revalidated.summary(), trace.summary());

        // The v2 segment directory decodes independently and covers the
        // whole stream.
        let per_segment: u64 = (0..trace.segment_count())
            .map(|i| {
                trace
                    .segment_runs(i)
                    .iter()
                    .map(|run| run.accesses.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        prop_assert_eq!(per_segment, spec.total_accesses());
    }

    /// Provenance region names round-trip the full spec of every task.
    #[test]
    fn provenance_round_trips_every_task(
        seed in 0u64..=u64::MAX,
        cycles in 1u64..9,
        raw in raw_tasks(),
    ) {
        let spec = build_spec(seed, cycles, &raw);
        let trace = generate(&spec).unwrap();
        let parsed = provenance(trace.table());
        prop_assert_eq!(parsed.len(), spec.tasks.len());
        for (i, (p, task)) in parsed.iter().zip(&spec.tasks).enumerate() {
            prop_assert_eq!(p.task_index, i as u32);
            prop_assert_eq!(p.kind, task.kind);
            prop_assert_eq!(p.accesses, task.accesses);
            prop_assert_eq!(p.seed, spec.seed);
        }
        // And the names parse individually straight off the table.
        for region in trace.table().iter() {
            prop_assert!(parse_region_name(&region.name).is_some());
        }
    }
}
