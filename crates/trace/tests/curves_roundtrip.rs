//! Property tests of the curve sidecar IR: encode→decode is lossless for
//! arbitrary windowed curve sets, and corrupt input fails with an error,
//! never a panic (mirroring `codec_roundtrip.rs` for the trace IR).

use proptest::prelude::*;

use compmem_trace::curves::{
    trace_content_hash, CurveEntry, CurveHeader, EncodedCurves, SidecarKey, SidecarWindow,
    SidecarWindowKind, WindowRecord,
};
use compmem_trace::{BufferId, CodecError, TaskId};

/// Raw header ingredients: hash (doubles as the L1 signature), min_sets
/// exponent, extra levels, ways_cap, window kind selector, window length.
type RawHeader = (u64, u32, u32, u32, u8, u64);

/// Strategy ingredients of one curve entry: key selector, id, cold count,
/// histogram bucket seeds.
type RawEntry = (u8, u32, u64, Vec<u64>);

fn header_strategy() -> impl Strategy<Value = RawHeader> {
    (
        0u64..=u64::MAX,
        0u32..4,
        0u32..3,
        1u32..5,
        0u8..3,
        1u64..(1 << 20),
    )
}

fn materialise_header(raw: RawHeader) -> CurveHeader {
    let (hash, min_exp, extra, ways_cap, kind, length) = raw;
    let (kind, length) = match kind {
        0 => (SidecarWindowKind::WholeRun, 0),
        1 => (SidecarWindowKind::Accesses, length),
        _ => (SidecarWindowKind::Cycles, length),
    };
    CurveHeader {
        trace_hash: hash,
        l1_signature: hash.rotate_left(17),
        min_sets: 1 << min_exp,
        max_sets: 1 << (min_exp + extra),
        ways_cap,
        window: SidecarWindow { kind, length },
    }
}

fn entries_strategy() -> impl Strategy<Value = Vec<RawEntry>> {
    prop::collection::vec(
        (
            0u8..7,
            0u32..5,
            0u64..100,
            prop::collection::vec(0u64..(1 << 30), 1..16),
        ),
        0..8,
    )
}

/// Builds well-formed, strictly key-sorted entries matching `header`'s
/// histogram shape from the raw strategy output.
fn materialise(header: &CurveHeader, raw: &[RawEntry]) -> Vec<CurveEntry> {
    let buckets = header.ways_cap as usize + 1;
    let mut entries: Vec<CurveEntry> = Vec::new();
    for (tag, id, cold, seeds) in raw {
        let key = match tag {
            0 => SidecarKey::Aggregate,
            1 => SidecarKey::Task(TaskId::new(*id)),
            2 => SidecarKey::Buffer(BufferId::new(*id)),
            3 => SidecarKey::AppData,
            4 => SidecarKey::AppBss,
            5 => SidecarKey::RtData,
            _ => SidecarKey::RtBss,
        };
        if entries.iter().any(|e| e.key == key) {
            continue;
        }
        // Fill every level with the same warm total so the per-level
        // sum invariant holds (each warm access hits one bucket/level).
        let row: Vec<u64> = (0..buckets)
            .map(|b| seeds.get(b).copied().unwrap_or(0))
            .collect();
        let warm: u64 = row.iter().sum();
        let mut level_histograms = Vec::with_capacity(header.levels());
        for level in 0..header.levels() {
            let mut h = row.clone();
            h.rotate_right(level % buckets);
            level_histograms.push(h);
        }
        entries.push(CurveEntry {
            key,
            accesses: warm + cold,
            cold: *cold,
            level_histograms,
        });
    }
    entries.sort_by_key(|e| e.key);
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding and decoding arbitrary windowed curves preserves every
    /// field, and the encoding is deterministic.
    #[test]
    fn roundtrip_is_lossless(
        raw_header in header_strategy(),
        raw_windows in prop::collection::vec(
            (entries_strategy(), 0u64..(1 << 30), 0u64..(1 << 30)),
            0..5,
        ),
        raw_total in entries_strategy(),
    ) {
        let header = materialise_header(raw_header);
        let windows: Vec<WindowRecord> = raw_windows
            .iter()
            .enumerate()
            .map(|(index, (raw, start, span))| WindowRecord {
                index: index as u64,
                start_cycle: *start,
                end_cycle: start + span,
                entries: materialise(&header, raw),
            })
            .collect();
        let curves = EncodedCurves::from_parts(
            header,
            windows,
            materialise(&header, &raw_total),
        );
        let bytes = curves.to_bytes().unwrap();
        let back = EncodedCurves::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&curves, &back);
        prop_assert_eq!(bytes, back.to_bytes().unwrap());
    }

    /// Flipping any single byte of a valid sidecar (or truncating it)
    /// must produce `Err` or a different-but-valid decode — never a
    /// panic.
    #[test]
    fn corrupt_input_errors_instead_of_panicking(
        raw_header in header_strategy(),
        raw_total in entries_strategy(),
        flip_pos_seed in 0usize..10_000,
        flip_bits in 1u8..=255,
    ) {
        let header = materialise_header(raw_header);
        let curves = EncodedCurves::from_parts(
            header,
            vec![WindowRecord {
                index: 0,
                start_cycle: 0,
                end_cycle: 7,
                entries: materialise(&header, &raw_total),
            }],
            materialise(&header, &raw_total),
        );
        let bytes = curves.to_bytes().unwrap();

        let mut corrupt = bytes.clone();
        let pos = flip_pos_seed % corrupt.len();
        corrupt[pos] ^= flip_bits;
        match EncodedCurves::from_bytes(&corrupt) {
            Err(CodecError::Io(_)) => prop_assert!(false, "no I/O happens in memory"),
            Err(_) => {}
            Ok(parsed) => {
                // Still internally consistent: shapes honour the header.
                let levels = parsed.header().levels();
                let buckets = parsed.header().ways_cap as usize + 1;
                for entry in parsed.total() {
                    prop_assert_eq!(entry.level_histograms.len(), levels);
                    prop_assert!(entry
                        .level_histograms
                        .iter()
                        .all(|h| h.len() == buckets));
                }
            }
        }

        // Truncation at the corruption point must error (END mandatory).
        prop_assert!(EncodedCurves::from_bytes(&bytes[..pos]).is_err());
    }

    /// The content hash binds a sidecar to one exact byte stream.
    #[test]
    fn content_hash_detects_any_single_byte_change(
        bytes in prop::collection::vec(0u8..=255, 1..256),
        pos_seed in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let mut other = bytes.clone();
        let pos = pos_seed % other.len();
        other[pos] ^= flip;
        prop_assert!(trace_content_hash(&bytes) != trace_content_hash(&other));
    }
}
