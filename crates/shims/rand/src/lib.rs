//! Offline stand-in for the subset of `rand` 0.8 used by the workspace:
//! `SmallRng::seed_from_u64` and `Rng::gen_range` over integer ranges.
//!
//! The generator is a SplitMix64-seeded xorshift64*, which is deterministic
//! per seed (all the workspace needs — synthetic traces and images are
//! required to be reproducible) and statistically adequate for workload
//! synthesis. The API mirrors `rand` so the real crate can be swapped back
//! in without source changes.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* over a
    /// SplitMix64-expanded seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 finalizer decorrelates small consecutive seeds.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: z | 1, // xorshift state must be non-zero
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&v));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
        }
    }
}
