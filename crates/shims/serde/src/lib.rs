//! Offline no-op stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as markers; no
//! code path serialises anything. This shim re-exports no-op derive macros
//! so the annotations compile without network access. Swapping in the real
//! `serde` later requires no source changes.

pub use serde_derive::{Deserialize, Serialize};
