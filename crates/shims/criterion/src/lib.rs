//! Offline stand-in for the subset of `criterion` the benches use.
//!
//! Provides `Criterion`, benchmark groups, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros with real wall-clock
//! measurement (warm-up pass, then `sample_size` timed samples; the
//! median, minimum and maximum per-iteration times are reported). Results
//! are printed in a stable one-line format and, when the
//! `CRITERION_OUTPUT_JSON` environment variable names a file, also written
//! there as a JSON array — which is how the committed `BENCH_*.json`
//! baselines are produced without the real criterion's dependency tree.

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Timed samples actually taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
}

static RESULTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drives timed iterations inside `bench_function` closures.
pub struct Bencher {
    sample_size: usize,
    recorded: Option<(u64, Vec<f64>)>,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: aim for samples of at least ~5 ms so the
        // clock resolution does not dominate, capped to keep cheap benches
        // fast.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1) as u64;
        let iters_per_sample = (5_000_000 / once).clamp(1, 1_000_000);

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let total = start.elapsed().as_nanos() as f64;
            samples_ns.push(total / iters_per_sample as f64);
        }
        self.recorded = Some((iters_per_sample, samples_ns));
    }
}

fn record(id: String, sample_size: usize, bencher: Bencher) {
    let Some((iters, mut samples)) = bencher.recorded else {
        eprintln!("warning: bench `{id}` never called Bencher::iter");
        return;
    };
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let measurement = Measurement {
        id: id.clone(),
        samples: sample_size,
        iters_per_sample: iters,
        median_ns: median,
        min_ns: *samples.first().unwrap(),
        max_ns: *samples.last().unwrap(),
    };
    println!(
        "{id:<60} time: [{:>12.1} ns {:>12.1} ns {:>12.1} ns]",
        measurement.min_ns, measurement.median_ns, measurement.max_ns
    );
    RESULTS.lock().unwrap().push(measurement);
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            recorded: None,
        };
        f(&mut bencher);
        record(format!("{}/{name}", self.name), self.sample_size, bencher);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: 20,
            recorded: None,
        };
        f(&mut bencher);
        record(name.to_string(), 20, bencher);
        self
    }
}

/// Writes collected measurements as JSON when `CRITERION_OUTPUT_JSON` names
/// a destination file. Called by the `criterion_main!` expansion.
pub fn flush_results() {
    let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
             \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}{}\n",
            m.id,
            m.samples,
            m.iters_per_sample,
            m.median_ns,
            m.min_ns,
            m.max_ns,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::flush_results();
        }
    };
}
