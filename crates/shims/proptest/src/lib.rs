//! Offline stand-in for the subset of `proptest` the workspace tests use.
//!
//! Supports the `proptest!` macro with a `#![proptest_config(..)]` header,
//! `arg in strategy` bindings, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, integer-range strategies, `prop::collection::vec` and
//! `prop::sample::select`. Inputs are drawn from a deterministic PRNG (no
//! shrinking — a failing case prints its seed and case index via the plain
//! `assert!` panic message context instead).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic source of test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// A fixed-seed generator so test runs are reproducible.
    pub fn deterministic() -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(0x70726F70_74657374),
        }
    }

    /// Draws a uniform `u64` below `bound` (which must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.gen_range(0..bound)
    }

    /// Draws a uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                // Widen through i128: a full-width range (e.g.
                // `0u64..=u64::MAX`) has a span of 2^64, which would wrap
                // to zero in u64 arithmetic.
                let span = *self.end() as i128 - *self.start() as i128 + 1;
                let offset = if span > u64::MAX as i128 {
                    // Span covers the whole 64-bit space: draw uniformly.
                    rng.below(u64::MAX) as i128
                } else {
                    rng.below(span as u64) as i128
                };
                (*self.start() as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Number-of-elements specification for collection strategies: either an
/// exact `usize` or a `Range<usize>`.
pub trait SizeRange {
    /// Draws a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// Strategy combinators, mirroring the `proptest::prop` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s of values drawn from an element strategy.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `size` elements drawn from `element`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy picking one element of a fixed list.
        pub struct SelectStrategy<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for SelectStrategy<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(!self.options.is_empty(), "select from empty list");
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        /// Picks uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> SelectStrategy<T> {
            SelectStrategy { options }
        }
    }
}

/// Everything the tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a property-test condition (plain `assert!` under the hood).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
/// Must be used directly inside a `proptest!` body (it expands to
/// `continue` targeting the per-case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `arg in strategy` binding is sampled for
/// every case and the body re-run. Mirrors proptest's macro grammar for the
/// subset used in this workspace.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    let _ = case;
                    $( let $arg = $crate::Strategy::generate(&$strategy, &mut rng); )*
                    $body
                }
            }
        )*
    };
}
