//! No-op stand-in for the `serde` derive macros.
//!
//! The reproduction only uses `#[derive(Serialize, Deserialize)]` as
//! documentation of which types are serialisable; nothing in the workspace
//! serialises at run time, and the build environment has no network access
//! to fetch the real `serde`. These derives therefore expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing (the real derive would implement `serde::Serialize`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (the real derive would implement `serde::Deserialize`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
