//! The `compmem` CLI command bodies, as a library.
//!
//! Every subcommand of the `compmem` binary (`record`, `gen`, `replay`,
//! `sweep`, `profile`, `sweep-shapes`, `info`) lives here, parameterised on the
//! output sink it writes to. The one-shot binary calls [`dispatch`] with
//! (locked) stdout; the `compmem serve` daemon calls the *same* function
//! with an in-memory buffer and ships the bytes over the wire. That
//! sharing is the daemon's correctness contract — a served response is
//! byte-identical to the one-shot CLI run because it **is** the one-shot
//! CLI run, minus the process — and `docs/ARCHITECTURE.md` ("Service
//! layer") documents it as such.
//!
//! Diagnostics that are *about the invocation* rather than part of the
//! result (the lane-worker notice) still go to the process's stderr:
//! stderr is not captured, not shipped, and not part of the parity
//! contract.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use compmem::experiment::{
    allocation_problem_for_table, phase_allocations_for_table, run_replay,
    sweep_shapes_from_curves, validate_phase_plan, Experiment, ReplayParallelism, RunOutcome,
    ScenarioSpec,
};
use compmem::{solve_with_floors, CoreError, OptimizerKind, QosFloor};
use compmem_cache::{
    CacheConfig, CacheSizeLattice, CurveResolution, OrganizationSpec, PartitionKey, PartitionMap,
    PartitionSchedule, ReplacementPolicy, WayAllocation, WindowConfig, WindowedCurves,
};
use compmem_platform::{
    lane_eligibility, profile_trace_windowed_lanes, profile_trace_with_sidecar_lanes,
    PlatformConfig, PreparedTrace, SidecarOutcome,
};
use compmem_trace::gen::{generate, provenance, GenKind, GenSpec, GenTask};
use compmem_trace::{
    curves::sidecar_path, BufferId, EncodedCurves, EncodedTrace, RegionTable, TaskId,
    DEFAULT_CYCLES_PER_ACCESS,
};
use compmem_workloads::apps::Application;

use crate::{jpeg_canny_experiment, mpeg2_experiment, Scale};

fn io_err(e: std::io::Error) -> String {
    format!("output write failed: {e}")
}

/// `writeln!` into the command's sink, mapping the I/O error to the
/// CLI's `String` error type.
macro_rules! outln {
    ($out:expr) => { writeln!($out).map_err(io_err)? };
    ($out:expr, $($arg:tt)*) => { writeln!($out, $($arg)*).map_err(io_err)? };
}

/// `write!` (no newline) into the command's sink.
macro_rules! outw {
    ($out:expr, $($arg:tt)*) => { write!($out, $($arg)*).map_err(io_err)? };
}

/// Runs one `compmem` subcommand, writing its output (the exact bytes the
/// one-shot binary would print to stdout) into `out`.
///
/// # Errors
///
/// The human-readable error message the binary would print to stderr.
pub fn dispatch(verb: &str, args: &[String], out: &mut dyn Write) -> Result<(), String> {
    dispatch_preloaded(verb, args, None, out)
}

/// A trace the caller has already read and decoded: commands whose
/// `--trace` flag names exactly `path` reuse `trace` instead of loading
/// the file again. The `compmem serve` daemon passes its store's
/// memoised decode here, so a cache-hit request costs the analytic
/// evaluation alone — decoding is deterministic, so the output bytes are
/// unchanged.
pub struct PreloadedTrace {
    /// The path the trace was read from (compared against `--trace`).
    pub path: PathBuf,
    /// The decoded trace, shared with the caller's cache.
    pub trace: Arc<PreparedTrace>,
}

/// [`dispatch`] with an optional [`PreloadedTrace`].
///
/// # Errors
///
/// The human-readable error message the binary would print to stderr.
pub fn dispatch_preloaded(
    verb: &str,
    args: &[String],
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    match verb {
        "record" => record(args, out),
        "gen" => gen(args, out),
        "replay" => replay(args, preloaded, out),
        "sweep" => sweep(args, preloaded, out),
        "profile" => profile(args, preloaded, out),
        "sweep-shapes" => sweep_shapes(args, preloaded, out),
        "info" => info(args, preloaded, out),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Minimal flag parser: every option takes one value.
pub(crate) fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        out.push((name.to_string(), value.clone()));
    }
    Ok(out)
}

pub(crate) fn get<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Worker-pool size of a sweep: `--jobs N`, defaulting to the host's
/// available parallelism.
fn jobs_flag(flags: &[(String, String)]) -> Result<usize, String> {
    match get(flags, "jobs") {
        None => Ok(compmem::executor::default_jobs()),
        Some(value) => match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err("--jobs needs a number of at least 1".to_string()),
        },
    }
}

/// Segment-parallel L1-filter workers of a single replay/profile
/// invocation: `--jobs N`, defaulting to 1 (serial). Unlike a sweep's
/// batch pool there is only one replay to run, so parallelism is opt-in.
fn segment_jobs_flag(flags: &[(String, String)]) -> Result<usize, String> {
    match get(flags, "jobs") {
        None => Ok(1),
        Some(value) => match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err("--jobs needs a number of at least 1".to_string()),
        },
    }
}

/// Lane count of a replay/profiling invocation: `--lanes N`, defaulting
/// to 1 (serial).
fn lanes_flag(flags: &[(String, String)]) -> Result<usize, String> {
    match get(flags, "lanes") {
        None => Ok(1),
        Some(value) => match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err("--lanes needs a number of at least 1".to_string()),
        },
    }
}

fn record(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let app = get(&flags, "app").ok_or("record needs --app jpeg_canny|mpeg2")?;
    let out_path = get(&flags, "out").ok_or("record needs --out FILE")?;
    let scale = match get(&flags, "scale") {
        None => Scale::Small,
        Some(name) => Scale::parse(name).ok_or_else(|| format!("unknown scale `{name}`"))?,
    };
    let org = get(&flags, "org").unwrap_or("shared");

    let (outcome, trace) = match app {
        "jpeg_canny" => record_with(&jpeg_canny_experiment(scale), org)?,
        "mpeg2" => record_with(&mpeg2_experiment(scale), org)?,
        other => return Err(format!("unknown app `{other}` (use jpeg_canny or mpeg2)")),
    };
    trace
        .trace()
        .write_to(out_path)
        .map_err(|e| e.to_string())?;
    let summary = trace.summary();
    outln!(
        out,
        "recorded {app} ({org} L2): {} accesses in {} runs on {} processors",
        summary.accesses,
        summary.runs,
        summary.processors
    );
    outln!(
        out,
        "  live run: {} cycles makespan, L2 miss rate {:.2}%",
        outcome.report.makespan_cycles,
        100.0 * outcome.report.l2_miss_rate()
    );
    outln!(
        out,
        "  wrote {out_path}: {} bytes ({:.2} bytes/access)",
        summary.encoded_bytes,
        summary.bytes_per_access()
    );
    Ok(())
}

fn record_with<F: Fn() -> Application>(
    experiment: &Experiment<F>,
    org: &str,
) -> Result<(RunOutcome, Arc<PreparedTrace>), String> {
    let spec = match org {
        "shared" => experiment.shared_spec(),
        "way-partitioned" => experiment.way_partitioned_spec(),
        "profiling" => experiment.profiling_spec(),
        other => {
            return Err(format!(
            "cannot record under organisation `{other}` (use shared, way-partitioned or profiling)"
        ))
        }
    };
    experiment.record_trace(&spec).map_err(|e| e.to_string())
}

/// The workload zoo front door: `compmem gen` synthesises a deterministic
/// scenario trace (standard v2 IR, so every other subcommand consumes it
/// unchanged) from a family name, a seed and per-family knobs — or a
/// multi-program mix via `--tasks`. The full generator spec is embedded
/// in the trace's region names; `compmem info` prints it back.
fn gen(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let path = get(&flags, "out").ok_or("gen needs --out FILE")?;
    let kind_name = get(&flags, "kind").ok_or("gen needs --kind zipf|scan|chase|phased|mix")?;
    let seed: u64 = get(&flags, "seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "--seed needs a number".to_string())?;
    let accesses: u64 = get(&flags, "accesses")
        .unwrap_or("20000")
        .parse()
        .map_err(|_| "--accesses needs a number".to_string())?;
    let cycles_per_access: u64 = match get(&flags, "cycles-per-access") {
        None => DEFAULT_CYCLES_PER_ACCESS,
        Some(v) => v
            .parse()
            .map_err(|_| "--cycles-per-access needs a number".to_string())?,
    };

    let tasks = match kind_name {
        "mix" => parse_task_specs(
            get(&flags, "tasks").unwrap_or("chase:24,scan:256x4"),
            accesses,
        )?,
        single => {
            if get(&flags, "tasks").is_some() {
                return Err("--tasks is only meaningful with --kind mix".to_string());
            }
            vec![GenTask {
                kind: single_gen_kind(single, &flags)?,
                accesses,
            }]
        }
    };
    let spec = GenSpec {
        seed,
        cycles_per_access,
        tasks,
    };

    let trace = generate(&spec).map_err(|e| e.to_string())?;
    trace.write_to(path).map_err(|e| format!("{path}: {e}"))?;
    let summary = trace.summary();
    outln!(
        out,
        "generated `{kind_name}` scenario: {} task(s), {} accesses, seed {seed}, \
         content hash {:016x}",
        spec.tasks.len(),
        summary.accesses,
        trace.content_hash()
    );
    for p in provenance(trace.table()) {
        outln!(out, "  {p}");
    }
    outln!(
        out,
        "wrote {path}: {} bytes (same spec regenerates byte-identical output)",
        summary.encoded_bytes
    );
    Ok(())
}

/// One single-family [`GenKind`] from the `gen` flags, with the zoo's
/// canonical defaults (zipf 32 KB, scan 256 KB, chase 24 KB, phased
/// 8 KB hot + 128 KB scan every 2048 accesses).
fn single_gen_kind(name: &str, flags: &[(String, String)]) -> Result<GenKind, String> {
    let kb = |flag: &str, default_kb: u64| -> Result<u64, String> {
        match get(flags, flag) {
            None => Ok(default_kb * 1024),
            Some(v) => match v.parse::<u64>() {
                Ok(n) if n >= 1 => Ok(n * 1024),
                _ => Err(format!("--{flag} needs a size in KB")),
            },
        }
    };
    match name {
        "zipf" => Ok(GenKind::Zipf {
            working_set_bytes: kb("ws-kb", 32)?,
        }),
        "scan" => Ok(GenKind::Scan {
            footprint_bytes: kb("footprint-kb", 256)?,
        }),
        "chase" => Ok(GenKind::Chase {
            working_set_bytes: kb("ws-kb", 24)?,
        }),
        "phased" => Ok(GenKind::Phased {
            hot_bytes: kb("hot-kb", 8)?,
            scan_bytes: kb("scan-kb", 128)?,
            phase_accesses: match get(flags, "phase-accesses") {
                None => 2_048,
                Some(v) => v
                    .parse()
                    .map_err(|_| "--phase-accesses needs a number".to_string())?,
            },
        }),
        other => Err(format!(
            "unknown generator family `{other}` (use zipf, scan, chase, phased or mix)"
        )),
    }
}

/// Parses the `--tasks` mix grammar: comma-separated `family[:SIZE][xN]`
/// entries, one task each. SIZE is the family's footprint in KB — for
/// `phased` it is `HOT+SCAN[+PHASE]` (KB, KB, accesses) — and `xN`
/// multiplies the per-task `--accesses` budget (an adversarial streamer
/// issuing at four times the victim's rate is `scan:256x4`).
fn parse_task_specs(spec: &str, base_accesses: u64) -> Result<Vec<GenTask>, String> {
    let mut tasks = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        let bad = |what: &str| format!("--tasks entry `{entry}`: {what}");
        let (head, mult) = match entry.rsplit_once('x') {
            Some((head, m))
                if !head.is_empty() && !m.is_empty() && m.bytes().all(|b| b.is_ascii_digit()) =>
            {
                (head, m.parse::<u64>().map_err(|_| bad("bad multiplier"))?)
            }
            _ => (entry, 1),
        };
        if mult == 0 {
            return Err(bad("multiplier must be at least 1"));
        }
        let (family, params) = match head.split_once(':') {
            None => (head, None),
            Some((f, p)) => (f, Some(p)),
        };
        let size_kb = |default_kb: u64| -> Result<u64, String> {
            match params {
                None => Ok(default_kb * 1024),
                Some(v) => match v.parse::<u64>() {
                    Ok(n) if n >= 1 => Ok(n * 1024),
                    _ => Err(bad("size must be a KB count")),
                },
            }
        };
        let kind = match family {
            "zipf" => GenKind::Zipf {
                working_set_bytes: size_kb(32)?,
            },
            "scan" => GenKind::Scan {
                footprint_bytes: size_kb(256)?,
            },
            "chase" => GenKind::Chase {
                working_set_bytes: size_kb(24)?,
            },
            "phased" => {
                let parts: Vec<&str> = params.map_or_else(Vec::new, |p| p.split('+').collect());
                if parts.len() > 3 {
                    return Err(bad("phased params are HOT+SCAN[+PHASE]"));
                }
                let num = |i: usize, default: u64| -> Result<u64, String> {
                    match parts.get(i) {
                        None => Ok(default),
                        Some(v) => match v.parse::<u64>() {
                            Ok(n) if n >= 1 => Ok(n),
                            _ => Err(bad("phased params are HOT+SCAN[+PHASE]")),
                        },
                    }
                };
                GenKind::Phased {
                    hot_bytes: num(0, 8)? * 1024,
                    scan_bytes: num(1, 128)? * 1024,
                    phase_accesses: num(2, 2_048)?,
                }
            }
            other => return Err(bad(&format!("unknown family `{other}`"))),
        };
        tasks.push(GenTask {
            kind,
            accesses: base_accesses * mult,
        });
    }
    Ok(tasks)
}

fn load_trace(
    flags: &[(String, String)],
    preloaded: Option<&PreloadedTrace>,
) -> Result<Arc<PreparedTrace>, String> {
    load_trace_with_path(flags, preloaded).map(|(trace, _)| trace)
}

fn load_trace_with_path(
    flags: &[(String, String)],
    preloaded: Option<&PreloadedTrace>,
) -> Result<(Arc<PreparedTrace>, PathBuf), String> {
    let path = get(flags, "trace").ok_or("missing --trace FILE")?;
    if let Some(ready) = preloaded {
        if ready.path.as_os_str() == path {
            return Ok((Arc::clone(&ready.trace), ready.path.clone()));
        }
    }
    EncodedTrace::read_from(path)
        .map(|trace| (Arc::new(PreparedTrace::from(trace)), PathBuf::from(path)))
        .map_err(|e| format!("{path}: {e}"))
}

/// Resolves the `--save-curves` policy: `None` disables persistence,
/// otherwise the sidecar path to use. The `auto` default keys the path
/// on the window configuration (`TRACE.curves` for whole-run,
/// `TRACE.wN.curves` / `TRACE.cyN.curves` for windowed passes), so a
/// windowed profile and a whole-run `sweep-shapes` each keep their own
/// persisted curves instead of rewriting a shared file back and forth.
pub(crate) fn save_curves_path(
    flags: &[(String, String)],
    trace_path: &Path,
    window: WindowConfig,
) -> Result<Option<PathBuf>, String> {
    match get(flags, "save-curves").unwrap_or("auto") {
        "off" => Ok(None),
        "auto" => Ok(Some(match window.kind {
            compmem_cache::WindowKind::WholeRun => sidecar_path(trace_path),
            compmem_cache::WindowKind::Accesses => {
                trace_path.with_extension(format!("w{}.curves", window.length))
            }
            compmem_cache::WindowKind::Cycles => {
                trace_path.with_extension(format!("cy{}.curves", window.length))
            }
        })),
        custom if !custom.is_empty() => Ok(Some(PathBuf::from(custom))),
        _ => Err("--save-curves needs auto, off or a file path".to_string()),
    }
}

/// The window configuration of a profiling invocation (`--windows` /
/// `--window-cycles`; default: one whole-run window).
pub(crate) fn window_config(flags: &[(String, String)]) -> Result<WindowConfig, String> {
    match (get(flags, "windows"), get(flags, "window-cycles")) {
        (Some(_), Some(_)) => Err("--windows and --window-cycles are exclusive".to_string()),
        (Some(n), None) => {
            let n: u64 = n
                .parse()
                .map_err(|_| "--windows needs a number".to_string())?;
            WindowConfig::accesses(n).map_err(|e| e.to_string())
        }
        (None, Some(n)) => {
            let n: u64 = n
                .parse()
                .map_err(|_| "--window-cycles needs a number".to_string())?;
            WindowConfig::cycles(n).map_err(|e| e.to_string())
        }
        (None, None) => Ok(WindowConfig::whole_run()),
    }
}

/// Profiles a trace, reusing or writing the sidecar as configured, and
/// narrates what happened with the persistence layer.
///
/// `lanes > 1` runs the pass lane-parallel (one worker per partition-key
/// shard, merged exactly); the notice goes to stderr because stdout —
/// tables, sidecar narration, and the sidecar bytes themselves — is
/// identical to a serial run, and CI diffs it to prove that.
fn profile_with_policy(
    platform: &PlatformConfig,
    trace: &PreparedTrace,
    resolution: CurveResolution,
    window: WindowConfig,
    sidecar: Option<&Path>,
    lanes: usize,
    out: &mut dyn Write,
) -> Result<WindowedCurves, String> {
    if lanes > 1 {
        eprintln!("note: profiling on up to {lanes} lane workers (results match a serial pass)");
    }
    match sidecar {
        None => profile_trace_windowed_lanes(platform, trace, resolution, window, lanes)
            .map_err(|e| e.to_string()),
        Some(path) => {
            let (windowed, outcome) =
                profile_trace_with_sidecar_lanes(platform, trace, resolution, window, path, lanes)
                    .map_err(|e| e.to_string())?;
            match outcome {
                SidecarOutcome::Reused => outln!(
                    out,
                    "reusing persisted curves from {} (L1 filter pass skipped)",
                    path.display()
                ),
                SidecarOutcome::Written => {
                    outln!(out, "wrote curve sidecar {}", path.display());
                }
                SidecarOutcome::Rewritten { reason } => outln!(
                    out,
                    "sidecar {} was unusable ({reason}); re-profiled and rewrote it",
                    path.display()
                ),
            }
            Ok(windowed)
        }
    }
}

pub(crate) fn l2_config(flags: &[(String, String)]) -> Result<CacheConfig, String> {
    let kb: u64 = get(flags, "l2-kb")
        .unwrap_or("64")
        .parse()
        .map_err(|_| "--l2-kb needs a number".to_string())?;
    let ways: u32 = get(flags, "ways")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "--ways needs a number".to_string())?;
    let mut config = CacheConfig::with_size_bytes(kb * 1024, ways).map_err(|e| e.to_string())?;
    if let Some(name) = get(flags, "policy") {
        let policy = ReplacementPolicy::ALL
            .into_iter()
            .find(|p| p.to_string() == name)
            .ok_or_else(|| format!("unknown replacement policy `{name}`"))?;
        config = config.policy(policy);
    }
    Ok(config)
}

/// Rejects profiling-backed invocations over a non-LRU L2: the
/// stack-distance curves are exact for LRU only, so a FIFO/PLRU/random
/// `--policy` would silently produce predictions the replayed cache
/// does not follow (the CLI-side twin of `CoreError::NonLruProfiling`).
fn require_lru_for_profiling(l2: CacheConfig) -> Result<(), String> {
    let policy = l2.replacement_policy();
    if policy != ReplacementPolicy::Lru {
        return Err(format!(
            "stack-distance profiling is exact for LRU only; the scenario's L2 uses \
             `{policy}` (drop --policy {policy} or use LRU)"
        ));
    }
    Ok(())
}

fn organization(
    name: &str,
    l2: CacheConfig,
    table: &RegionTable,
) -> Result<OrganizationSpec, String> {
    match name {
        "shared" => Ok(OrganizationSpec::Shared),
        "set-partitioned" => {
            let keys = PartitionKey::distinct_keys(table);
            PartitionMap::equal_split(l2.geometry(), &keys)
                .map(OrganizationSpec::SetPartitioned)
                .map_err(|e| e.to_string())
        }
        "way-partitioned" => Ok(OrganizationSpec::WayPartitioned(
            WayAllocation::equal_split(l2.geometry(), &PartitionKey::distinct_keys(table)),
        )),
        "profiling" => Ok(OrganizationSpec::Profiling(
            compmem_cache::CacheSizeLattice::new(l2.geometry(), 16),
        )),
        other => Err(format!("unknown organisation `{other}`")),
    }
}

fn print_outcome_row(label: &str, outcome: &RunOutcome, out: &mut dyn Write) -> Result<(), String> {
    let r = &outcome.report;
    // Lane-parallel replays reproduce every cache-side counter exactly
    // but do not reconstruct the global timing interleaving, so there is
    // no makespan to report.
    let makespan = match outcome.lane_decision {
        Some(_) => "-".to_string(),
        None => r.makespan_cycles.to_string(),
    };
    outln!(
        out,
        "{label:<24} {:>12} {:>12} {:>8.3}% {:>10} {:>14}",
        r.l2.accesses,
        r.l2.misses,
        100.0 * r.l2_miss_rate(),
        r.dram_accesses,
        makespan
    );
    Ok(())
}

fn outcome_header(out: &mut dyn Write) -> Result<(), String> {
    outln!(
        out,
        "{:<24} {:>12} {:>12} {:>9} {:>10} {:>14}",
        "organisation",
        "l2 accesses",
        "l2 misses",
        "missrate",
        "dram",
        "makespan"
    );
    Ok(())
}

/// The partition-sizing solver of a profiling/scheduling invocation.
fn solver_kind(flags: &[(String, String)]) -> Result<OptimizerKind, String> {
    match get(flags, "solve").unwrap_or("exact-ilp") {
        "exact-ilp" => Ok(OptimizerKind::ExactIlp),
        "greedy" => Ok(OptimizerKind::Greedy),
        "equal-split" => Ok(OptimizerKind::EqualSplit),
        other => Err(format!("unknown solver `{other}`")),
    }
}

/// The schedule-file token of a partition key (`task0`, `buffer3`,
/// `app.data`, ...) — the inverse of [`parse_partition_key`].
fn key_token(key: PartitionKey) -> String {
    match key {
        PartitionKey::Task(t) => format!("task{}", t.index()),
        PartitionKey::Buffer(b) => format!("buffer{}", b.index()),
        PartitionKey::AppData => "app.data".to_string(),
        PartitionKey::AppBss => "app.bss".to_string(),
        PartitionKey::RtData => "rt.data".to_string(),
        PartitionKey::RtBss => "rt.bss".to_string(),
    }
}

fn parse_partition_key(token: &str) -> Result<PartitionKey, String> {
    if let Some(n) = token.strip_prefix("task") {
        if let Ok(i) = n.parse::<u32>() {
            return Ok(PartitionKey::Task(TaskId::new(i)));
        }
    }
    if let Some(n) = token.strip_prefix("buffer") {
        if let Ok(i) = n.parse::<u32>() {
            return Ok(PartitionKey::Buffer(BufferId::new(i)));
        }
    }
    match token {
        "app.data" => Ok(PartitionKey::AppData),
        "app.bss" => Ok(PartitionKey::AppBss),
        "rt.data" => Ok(PartitionKey::RtData),
        "rt.bss" => Ok(PartitionKey::RtBss),
        other => Err(format!(
            "unknown partition key `{other}` (use taskN, bufferN, app.data, app.bss, \
             rt.data or rt.bss)"
        )),
    }
}

/// Parses the text schedule format: one step per line, `AT_CYCLE
/// key=sets ...` (packed back to back in listed order) or `AT_CYCLE
/// shared`; `#` starts a comment.
fn parse_schedule_file(path: &str, l2: CacheConfig) -> Result<PartitionSchedule, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut steps = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| format!("{path}:{}: {what}", lineno + 1);
        let mut parts = line.split_whitespace();
        let at_cycle: u64 = parts
            .next()
            .expect("non-empty line has a first token")
            .parse()
            .map_err(|_| bad("step must start with its AT_CYCLE"))?;
        let rest: Vec<&str> = parts.collect();
        let organization = if rest == ["shared"] {
            OrganizationSpec::Shared
        } else if rest.is_empty() {
            return Err(bad("step needs `shared` or key=sets assignments"));
        } else {
            // `key=sets` entries are packed back to back in listed order;
            // `key=sets@base` pins the exact placement (what
            // --save-schedule emits, so stable layouts round-trip). The
            // two forms cannot mix within one step.
            let mut sizes = Vec::with_capacity(rest.len());
            let mut placed = PartitionMap::new(l2.geometry());
            let mut explicit = 0usize;
            for assignment in rest {
                let (key, value) = assignment
                    .split_once('=')
                    .ok_or_else(|| bad("assignments are key=sets or key=sets@base"))?;
                let key = parse_partition_key(key).map_err(|e| bad(&e))?;
                let (sets, base) = match value.split_once('@') {
                    None => (value, None),
                    Some((sets, base)) => (
                        sets,
                        Some(
                            base.parse::<u32>()
                                .map_err(|_| bad("placement base must be a number"))?,
                        ),
                    ),
                };
                let sets: u32 = sets
                    .parse()
                    .map_err(|_| bad("assignment set count must be a number"))?;
                match base {
                    Some(base) => {
                        explicit += 1;
                        placed
                            .assign(key, base, sets)
                            .map_err(|e| bad(&e.to_string()))?;
                    }
                    None => sizes.push((key, sets)),
                }
            }
            let map = match (explicit, sizes.is_empty()) {
                (0, _) => {
                    PartitionMap::pack(l2.geometry(), &sizes).map_err(|e| bad(&e.to_string()))?
                }
                (_, true) => placed,
                _ => return Err(bad("cannot mix key=sets and key=sets@base in one step")),
            };
            OrganizationSpec::SetPartitioned(map)
        };
        steps.push((at_cycle, organization));
    }
    PartitionSchedule::new(steps).map_err(|e| format!("{path}: {e}"))
}

/// Writes a schedule in the text format [`parse_schedule_file`] reads
/// (set-partitioned maps are emitted in key order, which is also their
/// packed layout order, so the file round-trips exactly).
fn write_schedule_file(path: &str, schedule: &PartitionSchedule) -> Result<(), String> {
    let mut out = String::from(
        "# compmem partition schedule: AT_CYCLE key=sets@base ... | AT_CYCLE shared\n",
    );
    for step in schedule.steps() {
        match &step.organization {
            OrganizationSpec::Shared => {
                out.push_str(&format!("{} shared\n", step.at_cycle));
            }
            OrganizationSpec::SetPartitioned(map) => {
                out.push_str(&format!("{}", step.at_cycle));
                for (key, partition) in map.iter() {
                    out.push_str(&format!(
                        " {}={}@{}",
                        key_token(*key),
                        partition.sets,
                        partition.base_set
                    ));
                }
                out.push('\n');
            }
            other => {
                return Err(format!(
                    "schedule files cannot express `{}` steps",
                    other.label()
                ))
            }
        }
    }
    std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))
}

/// Prints one line per step: step 0 as a summary, every switch as the
/// diff against its predecessor (only re-sized/moved partitions).
fn print_schedule_steps(schedule: &PartitionSchedule, out: &mut dyn Write) -> Result<(), String> {
    let mut previous: Option<&PartitionMap> = None;
    for (i, step) in schedule.steps().iter().enumerate() {
        outw!(
            out,
            "  step {i} @ cycle {:>10}: {}",
            step.at_cycle,
            step.organization.label()
        );
        if let OrganizationSpec::SetPartitioned(map) = &step.organization {
            match previous {
                None => outw!(
                    out,
                    " — {} partitions over {} sets",
                    map.len(),
                    map.assigned_sets()
                ),
                Some(prev) => {
                    let changed: Vec<String> = map
                        .iter()
                        .filter_map(|(key, p)| {
                            let old = prev.partition_for(*key);
                            (old != Some(*p)).then(|| match old {
                                Some(o) if o.sets != p.sets => {
                                    format!("{key} {}->{} sets", o.sets, p.sets)
                                }
                                Some(_) => format!("{key} moved"),
                                None => format!("{key} +{} sets", p.sets),
                            })
                        })
                        .collect();
                    if changed.is_empty() {
                        outw!(out, " — unchanged");
                    } else {
                        outw!(out, " — {}", changed.join(", "));
                    }
                }
            }
            previous = Some(map);
        }
        outln!(out);
    }
    Ok(())
}

fn replay(
    args: &[String],
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if let Some(qos) = get(&flags, "qos") {
        if get(&flags, "controller").is_some() || get(&flags, "schedule").is_some() {
            return Err(
                "--qos solves one static floor-constrained partitioning; it is exclusive \
                 with --controller and --schedule"
                    .to_string(),
            );
        }
        let qos = qos.to_string();
        return replay_qos(&flags, &qos, preloaded, out);
    }
    if let Some(name) = get(&flags, "controller") {
        if get(&flags, "schedule").is_some() {
            return Err("--controller and --schedule are exclusive".to_string());
        }
        return replay_controller(&flags, name, preloaded, out);
    }
    match get(&flags, "schedule") {
        None => replay_static(&flags, preloaded, out),
        Some("phases") => replay_phase_schedule(&flags, preloaded, out),
        Some(path) => {
            let path = path.to_string();
            replay_schedule_file(&flags, &path, preloaded, out)
        }
    }
}

/// The floor-constrained replay behind `replay --qos`: profile the trace
/// (reusing its curve sidecar when present), solve the allocation under
/// per-key QoS floors ([`solve_with_floors`]), replay through the
/// resulting set-partitioned L2 and print a measured-vs-predicted-vs-
/// floor verdict per guaranteed key. An unsatisfiable floor is the
/// solver's typed `QosInfeasible` error, surfaced as a nonzero exit.
fn replay_qos(
    flags: &[(String, String)],
    qos: &str,
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    if get(flags, "lanes").is_some() {
        return Err(
            "replay --qos validates a floor-solved partitioning end to end; --lanes is \
             not supported here (use a static replay of the solved schedule)"
                .to_string(),
        );
    }
    let (trace, trace_path) = load_trace_with_path(flags, preloaded)?;
    let l2 = l2_config(flags)?;
    require_lru_for_profiling(l2)?;
    let geometry = l2.geometry();
    let sets_per_unit: u32 = get(flags, "sets-per-unit")
        .unwrap_or("16")
        .parse()
        .map_err(|_| "--sets-per-unit needs a number".to_string())?;
    let resolution =
        CurveResolution::for_geometry(geometry, sets_per_unit).map_err(|e| e.to_string())?;
    let lattice = CacheSizeLattice::new(geometry, sets_per_unit);
    let kind = solver_kind(flags)?;
    let floors = parse_qos_floors(qos, trace.table())?;

    let window = WindowConfig::whole_run();
    let sidecar = save_curves_path(flags, &trace_path, window)?;
    let platform = PlatformConfig::default();
    let windowed = profile_with_policy(
        &platform,
        &trace,
        resolution,
        window,
        sidecar.as_deref(),
        1,
        out,
    )?;
    let profiles = windowed
        .total
        .to_profiles(&lattice, geometry.ways())
        .map_err(|e| e.to_string())?;

    let problem = allocation_problem_for_table(trace.table(), &lattice, geometry, profiles.clone());
    let allocation = solve_with_floors(&problem, &floors, kind).map_err(|e| e.to_string())?;
    let sizes: Vec<(PartitionKey, u32)> = allocation
        .iter()
        .map(|(&key, &units)| (key, lattice.sets_of(units)))
        .collect();
    let map = PartitionMap::pack(geometry, &sizes).map_err(|e| e.to_string())?;

    let spec = ScenarioSpec::replay(l2, OrganizationSpec::SetPartitioned(map), trace.clone());
    let outcome = run_replay(&platform, &spec).map_err(|e| e.to_string())?;

    outln!(
        out,
        "replayed {} accesses under a {kind} allocation honouring {} QoS floor(s)",
        trace.accesses(),
        floors.len()
    );
    outcome_header(out)?;
    print_outcome_row("qos-partitioned", &outcome, out)?;
    outln!(
        out,
        "per-floor verdicts (measured on the partitioned replay):"
    );
    outln!(
        out,
        "  {:<16} {:>6} {:>10} {:>10} {:>8}  verdict",
        "key",
        "units",
        "predicted",
        "measured",
        "floor"
    );
    for floor in &floors {
        let units = allocation.units_of(floor.key);
        let predicted = profiles
            .profile(floor.key)
            .map_or(0.0, |p| p.miss_rate_at(units));
        let stats = outcome.by_key.get(&floor.key).copied().unwrap_or_default();
        let measured = if stats.accesses == 0 {
            0.0
        } else {
            stats.misses as f64 / stats.accesses as f64
        };
        outln!(
            out,
            "  {:<16} {:>6} {:>9.2}% {:>9.2}% {:>7.2}%  {}",
            floor.key.to_string(),
            units,
            predicted * 100.0,
            measured * 100.0,
            floor.max_miss_rate * 100.0,
            if measured <= floor.max_miss_rate {
                "ok"
            } else {
                "VIOLATED"
            }
        );
    }
    Ok(())
}

/// Parses `--qos`: either one bare rate (`0.05`) applied to every task
/// in the trace's region table, or comma-separated `key=rate` entries
/// (`task0=0.05,buffer1=0.2`) over any partition key.
fn parse_qos_floors(spec: &str, table: &RegionTable) -> Result<Vec<QosFloor>, String> {
    let check = |rate: f64, context: &str| -> Result<f64, String> {
        if (0.0..=1.0).contains(&rate) {
            Ok(rate)
        } else {
            Err(format!("{context}: a miss-rate floor lives in 0..=1"))
        }
    };
    if let Ok(rate) = spec.parse::<f64>() {
        let rate = check(rate, "--qos RATE")?;
        let floors: Vec<QosFloor> = PartitionKey::distinct_keys(table)
            .into_iter()
            .filter(|key| matches!(key, PartitionKey::Task(_)))
            .map(|key| QosFloor {
                key,
                max_miss_rate: rate,
            })
            .collect();
        if floors.is_empty() {
            return Err("--qos RATE needs at least one task in the trace".to_string());
        }
        return Ok(floors);
    }
    let mut floors = Vec::new();
    for entry in spec.split(',') {
        let (key, rate) = entry.split_once('=').ok_or_else(|| {
            format!("--qos entry `{entry}` is not key=rate (or one bare rate for all tasks)")
        })?;
        let key = parse_partition_key(key.trim())?;
        let rate: f64 = rate
            .trim()
            .parse()
            .map_err(|_| format!("--qos entry `{entry}`: rate must be a number"))?;
        floors.push(QosFloor {
            key,
            max_miss_rate: check(rate, &format!("--qos entry `{entry}`"))?,
        });
    }
    Ok(floors)
}

/// The online control loop behind `replay --controller`: replay the
/// trace with a self-tuning policy re-solving on each closed profiling
/// window, or (`--controller compete`) race greedy, hysteresis and the
/// offline oracle on the same traffic and print the regret table.
fn replay_controller(
    flags: &[(String, String)],
    name: &str,
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    use compmem::controller::{
        compete, replay_controlled, ControllerPolicy, Greedy, Hysteresis, Oracle,
    };

    if get(flags, "lanes").is_some() {
        return Err(
            "replay --controller drives the timing loop end to end; --lanes is not \
             supported here (use a static or schedule-file replay)"
                .to_string(),
        );
    }
    let trace = load_trace(flags, preloaded)?;
    let l2 = l2_config(flags)?;
    require_lru_for_profiling(l2)?;
    let geometry = l2.geometry();
    let sets_per_unit: u32 = get(flags, "sets-per-unit")
        .unwrap_or("16")
        .parse()
        .map_err(|_| "--sets-per-unit needs a number".to_string())?;
    let resolution =
        CurveResolution::for_geometry(geometry, sets_per_unit).map_err(|e| e.to_string())?;
    let lattice = CacheSizeLattice::new(geometry, sets_per_unit);
    let window_cycles: u64 = get(flags, "window-cycles")
        .ok_or("replay --controller needs --window-cycles N (the control clock)")?
        .parse()
        .map_err(|_| "--window-cycles needs a number".to_string())?;
    let threshold: f64 = get(flags, "phases")
        .unwrap_or("0.1")
        .parse()
        .map_err(|_| "--phases needs a curve-delta threshold".to_string())?;
    let margin: f64 = get(flags, "margin")
        .unwrap_or("1.0")
        .parse()
        .map_err(|_| "--margin needs a number of misses per flushed line".to_string())?;
    let mut config = compmem::controller::ControllerConfig::cycles(window_cycles, resolution)
        .map_err(|e| e.to_string())?;
    config.optimizer = solver_kind(flags)?;
    let platform = PlatformConfig::default();
    // `--jobs N` parallelises the one-off L1 filter pass; the controlled
    // replay itself is serial and reads the same filtered trace either
    // way, so the output is byte-identical across jobs counts.
    trace
        .filtered_for_jobs(&platform, segment_jobs_flag(flags)?)
        .map_err(|e| e.to_string())?;

    if name == "compete" {
        let mut greedy = Greedy;
        let mut hysteresis = Hysteresis::new(threshold, margin);
        let mut oracle = Oracle::plan(&platform, l2, &lattice, &trace, threshold, &config)
            .map_err(|e| e.to_string())?;
        let mut policies: Vec<&mut dyn ControllerPolicy> =
            vec![&mut greedy, &mut hysteresis, &mut oracle];
        let (outcomes, report) = compete(&platform, l2, &lattice, &trace, &mut policies, &config)
            .map_err(|e| e.to_string())?;
        outln!(
            out,
            "controller competition on {} accesses: windows of {window_cycles} cycles, \
             phase threshold {threshold}, switch margin {margin}",
            trace.accesses()
        );
        outcome_header(out)?;
        for outcome in &outcomes {
            print_outcome_row(&outcome.policy, &outcome.outcome, out)?;
        }
        outln!(
            out,
            "regret vs `{}` (cost {}):",
            report.baseline,
            report.oracle_cost
        );
        outw!(out, "{}", report.table());
        return Ok(());
    }

    let mut policy: Box<dyn ControllerPolicy> = match name {
        "greedy" => Box::new(Greedy),
        "hysteresis" => Box::new(Hysteresis::new(threshold, margin)),
        "oracle" => Box::new(
            Oracle::plan(&platform, l2, &lattice, &trace, threshold, &config)
                .map_err(|e| e.to_string())?,
        ),
        other => {
            return Err(format!(
                "unknown controller `{other}` (use greedy, hysteresis, oracle or compete)"
            ))
        }
    };
    let outcome = replay_controlled(&platform, l2, &lattice, &trace, policy.as_mut(), &config)
        .map_err(|e| e.to_string())?;
    outln!(
        out,
        "controlled replay of {} accesses: policy `{}`, {} windows of {window_cycles} \
         cycles observed, {} switches fired",
        trace.accesses(),
        outcome.policy,
        outcome.ticks,
        outcome.switches()
    );
    outcome_header(out)?;
    print_outcome_row(&outcome.policy, &outcome.outcome, out)?;
    outln!(
        out,
        "repartition events ({} fired):",
        outcome.outcome.report.repartitions.len()
    );
    for record in &outcome.outcome.report.repartitions {
        outln!(
            out,
            "  step {} @ cycle {:>10}: {}",
            record.step,
            record.at_cycle,
            record.flush
        );
    }
    outln!(
        out,
        "control cost {} = {} L2 misses + {} flushed lines written back",
        outcome.cost(),
        outcome.outcome.report.l2.misses,
        outcome.total_flush().written_back
    );
    Ok(())
}

/// The [`ReplayParallelism`] of a single replay invocation. `--lanes`
/// on `replay` is **required**: asking for lanes on a scenario that
/// cannot split exactly is a hard error naming the reason, never a
/// silent serial run.
fn replay_parallelism(flags: &[(String, String)]) -> Result<ReplayParallelism, String> {
    let lanes = lanes_flag(flags)?;
    let request = if lanes > 1 {
        ReplayParallelism::required_lanes(lanes)
    } else {
        ReplayParallelism::default()
    };
    Ok(request.with_segment_jobs(segment_jobs_flag(flags)?))
}

/// Narrates how a laned replay split (printed after the outcome row).
fn print_lane_decision(outcome: &RunOutcome, out: &mut dyn Write) -> Result<(), String> {
    if let Some(decision) = outcome.lane_decision {
        match decision.fallback {
            None => outln!(
                out,
                "lane split: {} per-key lanes on up to {} workers (cache-side counters \
                 lane-exact; no makespan)",
                decision.lanes,
                decision.requested
            ),
            Some(reason) => outln!(out, "lane split: fell back to one serial lane — {reason}",),
        }
    }
    Ok(())
}

fn replay_static(
    flags: &[(String, String)],
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let trace = load_trace(flags, preloaded)?;
    let l2 = l2_config(flags)?;
    let org_name = get(flags, "org").unwrap_or("shared");
    let org = organization(org_name, l2, trace.table())?;
    let parallelism = replay_parallelism(flags)?;
    let spec = ScenarioSpec::replay(l2, org, trace.clone()).with_parallelism(parallelism);
    let outcome = run_replay(&PlatformConfig::default(), &spec).map_err(|e| e.to_string())?;
    outln!(
        out,
        "replayed {} accesses on {} processors under `{}`",
        trace.accesses(),
        trace.processors(),
        org_name
    );
    outcome_header(out)?;
    print_outcome_row(org_name, &outcome, out)?;
    print_lane_decision(&outcome, out)?;
    Ok(())
}

/// The validation driver behind `replay --schedule phases`: derive a
/// per-phase schedule from a windowed profile of the trace, then replay
/// static-best and phase-scheduled on the same traffic.
fn replay_phase_schedule(
    flags: &[(String, String)],
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    if get(flags, "lanes").is_some() {
        return Err(
            "replay --schedule phases validates a timing-derived schedule end to end; \
             --lanes is not supported here (use a static or schedule-file replay)"
                .to_string(),
        );
    }
    let (trace, trace_path) = load_trace_with_path(flags, preloaded)?;
    let l2 = l2_config(flags)?;
    require_lru_for_profiling(l2)?;
    let geometry = l2.geometry();
    let sets_per_unit: u32 = get(flags, "sets-per-unit")
        .unwrap_or("16")
        .parse()
        .map_err(|_| "--sets-per-unit needs a number".to_string())?;
    let resolution =
        CurveResolution::for_geometry(geometry, sets_per_unit).map_err(|e| e.to_string())?;
    let lattice = CacheSizeLattice::new(geometry, sets_per_unit);
    let kind = solver_kind(flags)?;
    let windows: u64 = get(flags, "windows")
        .unwrap_or("400")
        .parse()
        .map_err(|_| "--windows needs a number".to_string())?;
    let window = WindowConfig::accesses(windows).map_err(|e| e.to_string())?;
    let threshold: f64 = get(flags, "phases")
        .unwrap_or("0.1")
        .parse()
        .map_err(|_| "--phases needs a curve-delta threshold".to_string())?;
    let sidecar = save_curves_path(flags, &trace_path, window)?;

    let platform = PlatformConfig::default();
    let windowed = profile_with_policy(
        &platform,
        &trace,
        resolution,
        window,
        sidecar.as_deref(),
        1,
        out,
    )?;
    let plan = phase_allocations_for_table(
        &windowed,
        threshold,
        trace.table(),
        &lattice,
        geometry,
        kind,
    )
    .map_err(|e| e.to_string())?;
    outln!(
        out,
        "derived {} phase(s) from {} windows of {} L2-bound accesses (curve-delta {threshold})",
        plan.phases.len(),
        windowed.windows.len(),
        windows
    );
    let validation =
        validate_phase_plan(&platform, l2, &lattice, &plan, &trace).map_err(|e| e.to_string())?;

    if let Some(path) = get(flags, "save-schedule") {
        write_schedule_file(path, &validation.schedule)?;
        outln!(out, "wrote schedule file {path}");
    }

    let spec = ScenarioSpec::scheduled_replay(l2, validation.schedule.clone(), trace.clone());
    outln!(out, "scenario: {spec}");
    outcome_header(out)?;
    print_outcome_row("static whole-run", &validation.static_outcome, out)?;
    print_outcome_row("phase-scheduled", &validation.scheduled_outcome, out)?;
    print_repartition_report(&validation, out)?;
    Ok(())
}

fn print_repartition_report(
    validation: &compmem::experiment::ScheduleValidation,
    out: &mut dyn Write,
) -> Result<(), String> {
    let records = &validation.scheduled_outcome.report.repartitions;
    outln!(out, "repartition events ({} fired):", records.len());
    for record in records {
        outln!(
            out,
            "  step {} @ cycle {:>10}: {}",
            record.step,
            record.at_cycle,
            record.flush
        );
    }
    outln!(
        out,
        "{:<10} {:>22} {:>10} {:>10} {:>7}",
        "phase",
        "cycles",
        "predicted",
        "measured",
        "delta"
    );
    for comparison in &validation.phases {
        outln!(
            out,
            "{:<10} {:>22} {:>10} {:>10} {:>+7}",
            format!("phase {}", comparison.phase),
            format!("{}..{}", comparison.start_cycle, comparison.end_cycle),
            comparison.predicted_misses,
            comparison.measured_misses,
            comparison.delta()
        );
    }
    outln!(
        out,
        "scheduled vs static: {:+} L2 misses ({} across all switches)",
        -validation.measured_improvement(),
        validation.total_flush()
    );
    Ok(())
}

/// Replays the trace under a schedule file (`replay --schedule PATH`).
fn replay_schedule_file(
    flags: &[(String, String)],
    path: &str,
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let trace = load_trace(flags, preloaded)?;
    let l2 = l2_config(flags)?;
    let schedule = parse_schedule_file(path, l2)?;
    schedule
        .validate_for(l2.geometry(), trace.table())
        .map_err(|e| format!("{path}: {e}"))?;
    let parallelism = replay_parallelism(flags)?;
    let spec =
        ScenarioSpec::scheduled_replay(l2, schedule, trace.clone()).with_parallelism(parallelism);
    outln!(out, "scenario: {spec}");
    let outcome = run_replay(&PlatformConfig::default(), &spec).map_err(|e| e.to_string())?;
    outln!(
        out,
        "replayed {} accesses on {} processors under the schedule",
        trace.accesses(),
        trace.processors(),
    );
    outcome_header(out)?;
    print_outcome_row("scheduled", &outcome, out)?;
    print_lane_decision(&outcome, out)?;
    outln!(
        out,
        "repartition events ({} fired):",
        outcome.report.repartitions.len()
    );
    for record in &outcome.report.repartitions {
        outln!(
            out,
            "  step {} @ cycle {:>10}: {}",
            record.step,
            record.at_cycle,
            record.flush
        );
    }
    Ok(())
}

fn sweep(
    args: &[String],
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let trace = load_trace(&flags, preloaded)?;
    let sizes: Vec<u64> = get(&flags, "l2-kb")
        .unwrap_or("64")
        .split(',')
        .map(|s| s.parse().map_err(|_| format!("bad L2 size `{s}`")))
        .collect::<Result<_, _>>()?;
    let ways: u32 = get(&flags, "ways")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "--ways needs a number".to_string())?;
    let jobs = jobs_flag(&flags)?;
    let lanes = lanes_flag(&flags)?;
    // Lanes on a sweep are opportunistic: rows whose organisation cannot
    // split exactly (shared, overlapping way masks) fall back to one
    // serial lane instead of failing, so the grid always fills. The
    // cache-side counters are identical either way.
    let parallelism = if lanes > 1 {
        ReplayParallelism::lanes(lanes)
    } else {
        ReplayParallelism::default()
    };
    let platform = PlatformConfig::default();

    let lane_note = if lanes > 1 {
        format!(", up to {lanes} lanes/row")
    } else {
        String::new()
    };
    outln!(
        out,
        "sweeping {} organisations x {} L2 sizes over {} recorded accesses ({jobs} jobs{lane_note})",
        3,
        sizes.len(),
        trace.accesses()
    );
    // The whole (size x organisation) grid is one batch on the bounded
    // work-stealing pool: at most `jobs` worker threads regardless of how
    // many sizes are swept, with slow rows (big partitioned replays)
    // stolen by idle workers. Rows whose spec cannot be built (e.g. more
    // entities than ways) are reported in place, and a panicking row
    // surfaces as its own error instead of aborting the sweep.
    let mut grid: Vec<(u64, &str, Result<ScenarioSpec, String>)> = Vec::new();
    for &kb in &sizes {
        let l2 = CacheConfig::with_size_bytes(kb * 1024, ways).map_err(|e| e.to_string())?;
        for name in ["shared", "set-partitioned", "way-partitioned"] {
            let spec = organization(name, l2, trace.table()).map(|org| {
                ScenarioSpec::replay(l2, org, trace.clone()).with_parallelism(parallelism)
            });
            grid.push((kb, name, spec));
        }
    }
    let outcomes = compmem::executor::run_batch(&grid, jobs, |_, (_, _, spec)| match spec {
        Ok(spec) => run_replay(&platform, spec),
        Err(message) => Err(CoreError::Infeasible {
            reason: message.clone(),
        }),
    });
    for ((kb, name, spec), outcome) in grid.iter().zip(&outcomes) {
        if *name == "shared" {
            outln!(out, "\nL2 = {kb} KB, {ways}-way:");
            outcome_header(out)?;
        }
        match (spec, outcome) {
            (Err(e), _) => outln!(out, "{name:<24} (skipped: {e})"),
            (Ok(_), Ok(outcome)) => print_outcome_row(name, outcome, out)?,
            (Ok(_), Err(e)) => outln!(out, "{name:<24} (failed: {e})"),
        }
    }
    Ok(())
}

fn profile(
    args: &[String],
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (trace, trace_path) = load_trace_with_path(&flags, preloaded)?;
    let l2 = l2_config(&flags)?;
    require_lru_for_profiling(l2)?;
    let geometry = l2.geometry();
    let sets_per_unit: u32 = get(&flags, "sets-per-unit")
        .unwrap_or("16")
        .parse()
        .map_err(|_| "--sets-per-unit needs a number".to_string())?;
    let resolution =
        CurveResolution::for_geometry(geometry, sets_per_unit).map_err(|e| e.to_string())?;
    let lattice = CacheSizeLattice::new(geometry, sets_per_unit);
    let kind = solver_kind(&flags)?;
    let window = window_config(&flags)?;
    let sidecar = save_curves_path(&flags, &trace_path, window)?;
    // Validate before the (potentially expensive) profiling pass.
    let phase_threshold: Option<f64> = get(&flags, "phases")
        .map(|t| {
            t.parse()
                .map_err(|_| "--phases needs a curve-delta threshold".to_string())
        })
        .transpose()?;

    let lanes = lanes_flag(&flags)?;
    let seg_jobs = segment_jobs_flag(&flags)?;
    let platform = PlatformConfig::default();
    if seg_jobs > 1 {
        // Pre-warm the filtered-trace cache segment-parallel: the lane
        // workers then share the one filtered stream.
        trace
            .filtered_for_jobs(&platform, seg_jobs)
            .map_err(|e| e.to_string())?;
    }
    let windowed = profile_with_policy(
        &platform,
        &trace,
        resolution,
        window,
        sidecar.as_deref(),
        lanes,
        out,
    )?;
    let curves = &windowed.total;
    let profiles = curves
        .to_profiles(&lattice, geometry.ways())
        .map_err(|e| e.to_string())?;

    outln!(
        out,
        "profiled {} recorded accesses ({} L2-bound after the L1 filter) in one pass",
        trace.accesses(),
        curves.accesses()
    );
    outln!(
        out,
        "misses per entity by exclusive partition size ({} sets = {} B per unit):",
        sets_per_unit,
        lattice.unit_bytes(geometry)
    );
    print_profile_table(&lattice, &profiles, out)?;

    let allocation = solve_allocation(trace.table(), &lattice, geometry, profiles, kind)?;
    outln!(
        out,
        "\n{kind} allocation over {} units ({} used, {} predicted misses):",
        lattice.total_units,
        allocation.total_units,
        allocation.predicted_misses
    );
    print_allocation_rows(&lattice, &allocation, out)?;

    if windowed.windows.len() > 1 {
        outln!(
            out,
            "\n{} windows of {} {}:",
            windowed.windows.len(),
            windowed.config.length,
            match windowed.config.kind {
                compmem_cache::WindowKind::Accesses => "L2-bound accesses",
                compmem_cache::WindowKind::Cycles => "cycles",
                compmem_cache::WindowKind::WholeRun => "whole-run",
            }
        );
        for w in &windowed.windows {
            outln!(
                out,
                "  window {:>3}  cycles {:>10}..{:<10}  {:>8} accesses  missrate {:>6.2}%",
                w.index,
                w.start_cycle,
                w.end_cycle,
                w.curves.accesses(),
                100.0
                    * w.curves
                        .aggregate
                        .miss_rate(geometry.sets(), geometry.ways())
                        .unwrap_or(0.0),
            );
        }
    }

    if let Some(threshold) = phase_threshold {
        phase_report(&windowed, threshold, &trace, &lattice, geometry, kind, out)?;
    }
    Ok(())
}

fn print_profile_table(
    lattice: &CacheSizeLattice,
    profiles: &compmem::MissProfiles,
    out: &mut dyn Write,
) -> Result<(), String> {
    outw!(out, "{:<16} {:>10}", "entity", "accesses");
    for &units in &lattice.candidate_units {
        outw!(out, " {:>9}", format!("{units}u"));
    }
    outln!(out);
    for (key, profile) in &profiles.profiles {
        outw!(out, "{:<16} {:>10}", key.to_string(), profile.accesses);
        for &units in &lattice.candidate_units {
            outw!(out, " {:>9}", profile.misses_at(units));
        }
        outln!(out);
    }
    Ok(())
}

fn solve_allocation(
    table: &RegionTable,
    lattice: &CacheSizeLattice,
    geometry: compmem_cache::CacheGeometry,
    profiles: compmem::MissProfiles,
    kind: OptimizerKind,
) -> Result<compmem::Allocation, String> {
    let problem = allocation_problem_for_table(table, lattice, geometry, profiles);
    compmem::optimizer::solve(&problem, kind).map_err(|e| e.to_string())
}

fn print_allocation_rows(
    lattice: &CacheSizeLattice,
    allocation: &compmem::Allocation,
    out: &mut dyn Write,
) -> Result<(), String> {
    for (key, &units) in allocation.iter() {
        outln!(
            out,
            "  {:<16} {:>4} units = {:>5} sets",
            key.to_string(),
            units,
            lattice.sets_of(units)
        );
    }
    Ok(())
}

/// Detects phases in a windowed profile and re-runs the solver per phase
/// (through the same [`phase_allocations_for_table`] flow the library's
/// `Experiment::phase_allocations` uses).
#[allow(clippy::too_many_arguments)]
fn phase_report(
    windowed: &WindowedCurves,
    threshold: f64,
    trace: &PreparedTrace,
    lattice: &CacheSizeLattice,
    geometry: compmem_cache::CacheGeometry,
    kind: OptimizerKind,
    out: &mut dyn Write,
) -> Result<(), String> {
    let plan =
        phase_allocations_for_table(windowed, threshold, trace.table(), lattice, geometry, kind)
            .map_err(|e| e.to_string())?;
    outln!(
        out,
        "\n{} phase(s) at curve-delta threshold {threshold} \
         (allocations re-solved per phase):",
        plan.phases.len()
    );
    for (i, phase) in plan.phases.iter().enumerate() {
        outln!(
            out,
            "phase {i}: windows {}..={} (cycles {}..{}), {} accesses, \
             {} predicted misses:",
            phase.first_window,
            phase.last_window,
            phase.start_cycle,
            phase.end_cycle,
            phase.accesses,
            phase.allocation.predicted_misses
        );
        print_allocation_rows(lattice, &phase.allocation, out)?;
    }
    Ok(())
}

fn sweep_shapes(
    args: &[String],
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (trace, trace_path) = load_trace_with_path(&flags, preloaded)?;
    let l2 = l2_config(&flags)?;
    require_lru_for_profiling(l2)?;
    let geometry = l2.geometry();
    let sets_per_unit: u32 = get(&flags, "sets-per-unit")
        .unwrap_or("16")
        .parse()
        .map_err(|_| "--sets-per-unit needs a number".to_string())?;
    let resolution =
        CurveResolution::for_geometry(geometry, sets_per_unit).map_err(|e| e.to_string())?;
    let check_replay = match get(&flags, "check-replay").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--check-replay needs on or off, not `{other}`")),
    };
    let sidecar = save_curves_path(&flags, &trace_path, WindowConfig::whole_run())?;
    let jobs = jobs_flag(&flags)?;
    let lanes = lanes_flag(&flags)?;

    let platform = PlatformConfig::default();
    let windowed = profile_with_policy(
        &platform,
        &trace,
        resolution,
        WindowConfig::whole_run(),
        sidecar.as_deref(),
        lanes,
        out,
    )?;
    let sweep = sweep_shapes_from_curves(&windowed.total);

    outln!(
        out,
        "analytic shape sweep from one pass over {} L2-bound accesses \
         ({} shapes, no replay per shape):",
        sweep.accesses,
        sweep.points.len()
    );
    // Each row is a set count; total capacity at a cell is
    // sets x ways x 64 B, i.e. the row's per-way size times the column's
    // way count.
    let ways = sweep.way_counts();
    outw!(out, "{:<10} {:>10}", "L2 sets", "way size");
    for w in &ways {
        outw!(out, " {:>12}", format!("{w}-way misses"));
    }
    outln!(out);
    for sets in sweep.set_counts() {
        let way_bytes = u64::from(sets) * 64;
        let way_size = if way_bytes >= 1024 {
            format!("{} KB", way_bytes / 1024)
        } else {
            format!("{way_bytes} B")
        };
        outw!(out, "{sets:<10} {way_size:>10}");
        for &w in &ways {
            let point = sweep.point(sets, w).expect("sweep covers the grid");
            outw!(out, " {:>12}", point.misses);
        }
        outln!(out);
    }

    if check_replay {
        verify_sweep_against_replay(&platform, &trace, &sweep, jobs)?;
        outln!(
            out,
            "replay cross-check: all {} shapes match the analytic sweep exactly",
            sweep.points.len()
        );
    }
    Ok(())
}

/// Replays the trace at every shape of the sweep and verifies the
/// analytic miss counts point for point.
fn verify_sweep_against_replay(
    platform: &PlatformConfig,
    trace: &Arc<PreparedTrace>,
    sweep: &compmem::experiment::ShapeSweep,
    jobs: usize,
) -> Result<(), String> {
    // Every shape replays the same immutable trace, so the cross-check
    // fans out on the work-stealing pool like the main sweep does.
    let outcomes = compmem::executor::run_batch(&sweep.points, jobs, |_, point| {
        let l2 = CacheConfig::new(point.sets, point.ways).map_err(CoreError::from)?;
        let spec = ScenarioSpec::replay(l2, OrganizationSpec::Shared, Arc::clone(trace));
        run_replay(platform, &spec)
    });
    for (point, outcome) in sweep.points.iter().zip(outcomes) {
        let outcome = outcome.map_err(|e| e.to_string())?;
        if outcome.report.l2.misses != point.misses {
            return Err(format!(
                "analytic sweep diverged from replay at {} sets x {} ways: \
                 analytic {} misses, replay {}",
                point.sets, point.ways, point.misses, outcome.report.l2.misses
            ));
        }
    }
    Ok(())
}

fn info(
    args: &[String],
    preloaded: Option<&PreloadedTrace>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (trace, trace_path) = load_trace_with_path(&flags, preloaded)?;
    let summary = trace.summary();
    outln!(
        out,
        "trace IR version {} ({} processors), content hash {:016x}",
        trace.trace().version(),
        summary.processors,
        trace.trace().content_hash()
    );
    outln!(
        out,
        "{} accesses in {} runs; {} bytes ({:.2} bytes/access)",
        summary.accesses,
        summary.runs,
        summary.encoded_bytes,
        summary.bytes_per_access()
    );
    // The segment directory is what lets replay tools slice the stream
    // without a full decode; v1 streams have none and replay as one unit.
    let segments = trace.trace().segment_directory();
    if segments.is_empty() {
        outln!(
            out,
            "segment directory: none (v{} stream replays as a single unit)",
            trace.trace().version()
        );
    } else {
        outln!(
            out,
            "segment directory: {} segments, ~{} accesses/segment, {} region snapshots",
            segments.len(),
            summary.accesses / segments.len() as u64,
            segments.iter().map(|s| s.regions.len()).sum::<usize>()
        );
    }
    // The embedded region table is the identity the codec validates every
    // DEF_REGION record against — print it in full (index, name, kind,
    // address range, size) so corrupt-trace errors can be acted on.
    outln!(
        out,
        "embedded region table ({} regions):",
        trace.table().len()
    );
    for region in trace.table().iter() {
        outln!(out, "  [{}] {region}", region.id.index());
    }
    // Workload-zoo traces carry their full generator spec in the region
    // names; parse and print it so a generated file is self-describing.
    let generated = provenance(trace.table());
    if !generated.is_empty() {
        outln!(
            out,
            "generator provenance (workload zoo, {} task(s)):",
            generated.len()
        );
        for p in &generated {
            outln!(out, "  {p}");
        }
    }
    // The lane-eligibility verdict per organisation: which scenarios a
    // `replay --lanes N` / `sweep --lanes N` over this trace can split
    // into per-partition-key lanes, and — when they cannot — why. Sized
    // by --l2-kb/--ways (default 64 KB, 4-way) because way-partitioned
    // eligibility depends on whether the allocation's masks overlap.
    let l2 = l2_config(&flags)?;
    let geometry = l2.geometry();
    outln!(
        out,
        "lane eligibility at a {} KB {}-way L2:",
        geometry.size_bytes() / 1024,
        geometry.ways()
    );
    for name in ["shared", "set-partitioned", "way-partitioned", "profiling"] {
        match organization(name, l2, trace.table()) {
            Err(e) => outln!(out, "  {name:<16} unavailable ({e})"),
            Ok(org) => match lane_eligibility(l2, &PartitionSchedule::single(org), trace.table()) {
                Ok(keys) => outln!(
                    out,
                    "  {name:<16} eligible — {} lanes (one per partition key)",
                    keys.len()
                ),
                Err(reason) => outln!(out, "  {name:<16} ineligible — {reason}"),
            },
        }
    }
    if let Some(path) = get(&flags, "schedule") {
        let schedule = parse_schedule_file(path, l2)?;
        outln!(out, "schedule {path}: {schedule}");
        print_schedule_steps(&schedule, out)?;
        match schedule.validate_for(l2.geometry(), trace.table()) {
            Ok(()) => outln!(out, "  validates against this trace's region table: ok"),
            Err(e) => outln!(out, "  DOES NOT validate against this trace: {e}"),
        }
    }
    let sidecar = sidecar_path(&trace_path);
    match EncodedCurves::read_from(&sidecar) {
        Ok(curves) => {
            let header = curves.header();
            let matches = curves.validate_for_trace(trace.trace().bytes()).is_ok();
            outln!(
                out,
                "curve sidecar {}: {} window(s), sets {}..={}, up to {} ways — {}",
                sidecar.display(),
                curves.windows().len(),
                header.min_sets,
                header.max_sets,
                header.ways_cap,
                if matches {
                    "matches this trace"
                } else {
                    "STALE (recorded over different trace bytes)"
                }
            );
        }
        Err(compmem_trace::CodecError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            outln!(out, "curve sidecar {}: not present", sidecar.display());
        }
        Err(e) => outln!(out, "curve sidecar {}: unusable ({e})", sidecar.display()),
    }
    Ok(())
}
