//! Shared scaffolding of the benchmark harness: experiment scales and
//! factory helpers used by the Criterion benches and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod service;

use compmem::experiment::{Experiment, ExperimentConfig, PaperFlowOutcome, RunOutcome};
use compmem::CoreError;
use compmem_cache::CacheConfig;
use compmem_workloads::apps::{
    jpeg_canny_app, mpeg2_app, Application, JpegCannyParams, Mpeg2Params,
};

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale pictures on the paper's 512 KB L2 (used by `repro` to
    /// regenerate the tables recorded in EXPERIMENTS.md).
    Paper,
    /// Reduced pictures on a 64 KB L2 (used by the Criterion benches and CI).
    Small,
    /// Miniature pictures on a 32 KB L2 (used by smoke tests and the CI run
    /// of the `compmem` record/replay CLI).
    Tiny,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "paper" => Some(Scale::Paper),
            "small" => Some(Scale::Small),
            "tiny" => Some(Scale::Tiny),
            _ => None,
        }
    }

    /// The experiment configuration of this scale.
    pub fn config(self) -> ExperimentConfig {
        match self {
            Scale::Paper => ExperimentConfig::default(),
            Scale::Small => ExperimentConfig {
                l2: CacheConfig::with_size_bytes(64 * 1024, 4).expect("valid geometry"),
                sets_per_unit: 4,
                ..ExperimentConfig::default()
            },
            Scale::Tiny => ExperimentConfig {
                l2: CacheConfig::with_size_bytes(32 * 1024, 4).expect("valid geometry"),
                sets_per_unit: 2,
                ..ExperimentConfig::default()
            },
        }
    }

    /// Parameters of the "two JPEG decoders + Canny" application at this
    /// scale.
    pub fn jpeg_canny_params(self) -> JpegCannyParams {
        match self {
            Scale::Paper => JpegCannyParams::paper_scale(),
            Scale::Small => JpegCannyParams {
                jpeg1: (96, 64),
                jpeg2: (64, 48),
                canny: (80, 64),
                threshold: 60,
                seed: 2005,
            },
            Scale::Tiny => JpegCannyParams::tiny(),
        }
    }

    /// Parameters of the MPEG-2 application at this scale.
    pub fn mpeg2_params(self) -> Mpeg2Params {
        match self {
            Scale::Paper => Mpeg2Params::paper_scale(),
            Scale::Small => Mpeg2Params {
                width: 96,
                height: 64,
                pictures: 2,
                seed: 2005,
            },
            Scale::Tiny => Mpeg2Params::tiny(),
        }
    }

    /// The larger shared L2 used for the paper's extra MPEG-2 data point
    /// (1 MB at paper scale).
    pub fn large_l2(self) -> CacheConfig {
        match self {
            Scale::Paper => CacheConfig::paper_l2_1mb(),
            Scale::Small => CacheConfig::with_size_bytes(128 * 1024, 4).expect("valid geometry"),
            Scale::Tiny => CacheConfig::with_size_bytes(64 * 1024, 4).expect("valid geometry"),
        }
    }
}

/// Builds the experiment driver for the first application (2 JPEG + Canny).
pub fn jpeg_canny_experiment(scale: Scale) -> Experiment<impl Fn() -> Application> {
    let params = scale.jpeg_canny_params();
    Experiment::new(scale.config(), move || {
        jpeg_canny_app(&params).expect("application parameters are valid")
    })
}

/// Builds the experiment driver for the second application (MPEG-2).
pub fn mpeg2_experiment(scale: Scale) -> Experiment<impl Fn() -> Application> {
    let params = scale.mpeg2_params();
    Experiment::new(scale.config(), move || {
        mpeg2_app(&params).expect("application parameters are valid")
    })
}

/// Runs the full paper flow for the first application.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn run_jpeg_canny_flow(scale: Scale) -> Result<PaperFlowOutcome, CoreError> {
    jpeg_canny_experiment(scale).run_paper_flow()
}

/// Runs the full paper flow for the second application.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn run_mpeg2_flow(scale: Scale) -> Result<PaperFlowOutcome, CoreError> {
    mpeg2_experiment(scale).run_paper_flow()
}

/// The three independent ablation runs of one application, executed in
/// parallel worker threads through the shared `Box<dyn CacheModel>` path.
#[derive(Debug, Clone)]
pub struct OrganizationSweep {
    /// Conventional shared cache at the scale's L2 size.
    pub shared: RunOutcome,
    /// Column-caching baseline (ways split evenly over all entities).
    pub way_partitioned: RunOutcome,
    /// Shared cache at the scale's larger comparison size.
    pub large_shared: RunOutcome,
}

/// Runs the shared, way-partitioned and larger-shared runs of the
/// "two JPEG decoders + Canny" application concurrently.
///
/// # Errors
///
/// Propagates the first error of any run.
pub fn jpeg_canny_organization_sweep(scale: Scale) -> Result<OrganizationSweep, CoreError> {
    let experiment = jpeg_canny_experiment(scale);
    let specs = vec![
        experiment.shared_spec(),
        experiment.way_partitioned_spec(),
        experiment.shared_spec_with_l2(scale.large_l2()),
    ];
    let mut results = experiment.run_all(&specs).into_iter();
    Ok(OrganizationSweep {
        shared: results.next().expect("three specs in")?,
        way_partitioned: results.next().expect("three specs in")?,
        large_shared: results.next().expect("three specs in")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse_and_produce_configs() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Paper.config().sets_per_unit, 16);
        assert_eq!(Scale::Small.config().sets_per_unit, 4);
        assert_eq!(Scale::Tiny.config().sets_per_unit, 2);
        assert!(Scale::Small.jpeg_canny_params().jpeg1.0 < JpegCannyParams::paper_scale().jpeg1.0);
        assert_eq!(Scale::Paper.large_l2().geometry().size_bytes(), 1024 * 1024);
    }
}
