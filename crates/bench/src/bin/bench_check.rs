//! Compares a freshly measured `BENCH_*.json` against a committed
//! baseline and fails on benchmark throughput regressions.
//!
//! Usage:
//!
//! ```text
//! bench_check --baseline BENCH_engine.json --fresh target/bench/BENCH_engine.json
//!             [--baseline B2 --fresh F2 ...] [--max-regression 0.25]
//! ```
//!
//! `--baseline`/`--fresh` flags pair up in order. For every benchmark id
//! present in both files the throughput regression is
//! `1 - baseline_median / fresh_median` (fresh slower than baseline);
//! exceeding `--max-regression` (default 0.25, overridable with the
//! `BENCH_CHECK_MAX_REGRESSION` environment variable) fails the check, as
//! does a baseline id missing from the fresh results. Fresh ids without a
//! baseline are reported but do not fail — commit an updated baseline to
//! adopt them.
//!
//! The parser handles exactly the flat JSON array the criterion shim
//! emits (`id` + `median_ns` per record), so the gate needs no JSON
//! dependency. `scripts/bench_check` wraps the re-run + compare loop for
//! CI.

use std::process::ExitCode;

/// One `{"id": ..., "median_ns": ...}` record of a shim-format file.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    id: String,
    median_ns: f64,
}

/// Extracts the records of the criterion shim's JSON format.
///
/// Scans for `"id"` and `"median_ns"` fields object by object; the shim
/// writes one object per line, but the parser only assumes every object
/// carries both fields.
fn parse_records(source: &str, path: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for object in source.split('{').skip(1) {
        let object = object.split('}').next().unwrap_or("");
        let id = field_str(object, "id")
            .ok_or_else(|| format!("{path}: benchmark record without an \"id\" field"))?;
        let median = field_num(object, "median_ns")
            .ok_or_else(|| format!("{path}: record `{id}` without a \"median_ns\" field"))?;
        if median <= 0.0 {
            return Err(format!("{path}: record `{id}` has non-positive median"));
        }
        records.push(Record {
            id,
            median_ns: median,
        });
    }
    if records.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(records)
}

fn field_str(object: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":");
    let rest = &object[object.find(&key)? + key.len()..];
    let start = rest.find('"')? + 1;
    let end = start + rest[start..].find('"')?;
    Some(rest[start..end].to_string())
}

fn field_num(object: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let rest = object[object.find(&key)? + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load(path: &str) -> Result<Vec<Record>, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_records(&source, path)
}

/// Compares one baseline/fresh pair; returns the number of failures.
fn compare(baseline_path: &str, fresh_path: &str, max_regression: f64) -> Result<u32, String> {
    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    let mut failures = 0;
    println!("{baseline_path} vs {fresh_path}:");
    println!(
        "  {:<52} {:>12} {:>12} {:>9}  verdict",
        "benchmark", "baseline ns", "fresh ns", "change"
    );
    for base in &baseline {
        let Some(now) = fresh.iter().find(|r| r.id == base.id) else {
            println!("  {:<52} missing from fresh results: FAIL", base.id);
            failures += 1;
            continue;
        };
        // Throughput regression: how much of the baseline's throughput
        // (iterations per second) was lost.
        let regression = 1.0 - base.median_ns / now.median_ns;
        let ok = regression <= max_regression;
        println!(
            "  {:<52} {:>12.0} {:>12.0} {:>+8.1}%  {}",
            base.id,
            base.median_ns,
            now.median_ns,
            100.0 * regression,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    for now in &fresh {
        if !baseline.iter().any(|r| r.id == now.id) {
            println!("  {:<52} new benchmark (no baseline committed yet)", now.id);
        }
    }
    Ok(failures)
}

fn run(args: &[String]) -> Result<u32, String> {
    let mut baselines = Vec::new();
    let mut fresh = Vec::new();
    let mut max_regression: f64 = std::env::var("BENCH_CHECK_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let value = iter
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--baseline" => baselines.push(value.clone()),
            "--fresh" => fresh.push(value.clone()),
            "--max-regression" => {
                max_regression = value
                    .parse()
                    .map_err(|_| "--max-regression needs a number".to_string())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if baselines.is_empty() || baselines.len() != fresh.len() {
        return Err("need matching --baseline/--fresh pairs".to_string());
    }
    println!(
        "bench_check: failing on >{:.0}% throughput regression",
        100.0 * max_regression
    );
    let mut failures = 0;
    for (baseline, fresh) in baselines.iter().zip(&fresh) {
        failures += compare(baseline, fresh, max_regression)?;
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => {
            println!("bench_check: all benchmarks within tolerance");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("bench_check: {failures} benchmark(s) regressed");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("bench_check: error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"id": "g/a", "samples": 10, "iters_per_sample": 1, "median_ns": 1000.0, "min_ns": 900.0, "max_ns": 1100.0},
  {"id": "g/b", "samples": 10, "iters_per_sample": 2, "median_ns": 500.0, "min_ns": 450.0, "max_ns": 600.0}
]
"#;

    #[test]
    fn parses_the_shim_format() {
        let records = parse_records(SAMPLE, "sample").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "g/a");
        assert_eq!(records[0].median_ns, 1000.0);
        assert_eq!(records[1].median_ns, 500.0);
        assert!(parse_records("[]", "empty").is_err());
        assert!(parse_records("[{\"median_ns\": 1.0}]", "no-id").is_err());
        assert!(parse_records("[{\"id\": \"x\"}]", "no-median").is_err());
    }

    #[test]
    fn regression_arithmetic() {
        // Fresh 25% slower in time = 20% throughput regression: passes at
        // the default tolerance; fresh 2x slower = 50% regression: fails.
        let base = Record {
            id: "x".into(),
            median_ns: 1000.0,
        };
        for (fresh_ns, limit, ok) in [
            (1250.0, 0.25, true),
            (1333.0, 0.25, true),
            (2000.0, 0.25, false),
            (900.0, 0.25, true),
        ] {
            let regression = 1.0 - base.median_ns / fresh_ns;
            assert_eq!(regression <= limit, ok, "fresh {fresh_ns}");
        }
    }
}
