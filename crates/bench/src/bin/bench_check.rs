//! Compares a freshly measured `BENCH_*.json` against a committed
//! baseline and fails on benchmark throughput regressions.
//!
//! Usage:
//!
//! ```text
//! bench_check --baseline BENCH_engine.json --fresh target/bench/BENCH_engine.json
//!             [--baseline B2 --fresh F2 ...] [--max-regression 0.25]
//!             [--ratio NUM_ID,DEN_ID ...] [--max-ratio-regression 0.25]
//! ```
//!
//! `--baseline`/`--fresh` flags pair up in order. For every benchmark id
//! present in both files the throughput regression is
//! `1 - baseline_median / fresh_median` (fresh slower than baseline);
//! exceeding `--max-regression` (default 0.25, overridable with the
//! `BENCH_CHECK_MAX_REGRESSION` environment variable) fails the check, as
//! does a baseline id missing from the fresh results. Fresh ids without a
//! baseline are reported but do not fail — commit an updated baseline to
//! adopt them.
//!
//! # Machine-independent ratio gates
//!
//! The absolute gate compares medians measured on *different machines*
//! (the committed baseline's vs the CI runner's), so a slow shared runner
//! can fail it spuriously. `--ratio NUM_ID,DEN_ID` adds a gate on the
//! **ratio** `median(NUM) / median(DEN)` of two benchmarks *recorded in
//! the same run*: machine speed cancels out of the quotient, so the gate
//! only fires when the relationship between the two paths changes — e.g.
//! replay getting slower *relative to* live execution, or the single-pass
//! profiler losing ground against the shadow-bank replay it replaced. The
//! fresh ratio may shrink below the baseline ratio by at most
//! `--max-ratio-regression` (default 0.25, env
//! `BENCH_CHECK_MAX_RATIO_REGRESSION`); ids are looked up across all
//! loaded files. Growing ratios (the fast path got even faster) never
//! fail.
//!
//! The parser handles exactly the flat JSON array the criterion shim
//! emits (`id` + `median_ns` per record), so the gate needs no JSON
//! dependency. `scripts/bench_check` wraps the re-run + compare loop for
//! CI and passes the standing ratio gates.

use std::process::ExitCode;

/// One `{"id": ..., "median_ns": ...}` record of a shim-format file.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    id: String,
    median_ns: f64,
}

/// Extracts the records of the criterion shim's JSON format.
///
/// Scans for `"id"` and `"median_ns"` fields object by object; the shim
/// writes one object per line, but the parser only assumes every object
/// carries both fields.
fn parse_records(source: &str, path: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for object in source.split('{').skip(1) {
        let object = object.split('}').next().unwrap_or("");
        let id = field_str(object, "id")
            .ok_or_else(|| format!("{path}: benchmark record without an \"id\" field"))?;
        let median = field_num(object, "median_ns")
            .ok_or_else(|| format!("{path}: record `{id}` without a \"median_ns\" field"))?;
        if median <= 0.0 {
            return Err(format!("{path}: record `{id}` has non-positive median"));
        }
        records.push(Record {
            id,
            median_ns: median,
        });
    }
    if records.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(records)
}

fn field_str(object: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":");
    let rest = &object[object.find(&key)? + key.len()..];
    let start = rest.find('"')? + 1;
    let end = start + rest[start..].find('"')?;
    Some(rest[start..end].to_string())
}

fn field_num(object: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let rest = object[object.find(&key)? + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load(path: &str) -> Result<Vec<Record>, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_records(&source, path)
}

/// Compares one baseline/fresh pair of already-parsed record sets;
/// returns the number of failures.
fn compare(
    baseline_path: &str,
    baseline: &[Record],
    fresh_path: &str,
    fresh: &[Record],
    max_regression: f64,
) -> u32 {
    let mut failures = 0;
    println!("{baseline_path} vs {fresh_path}:");
    println!(
        "  {:<52} {:>12} {:>12} {:>9}  verdict",
        "benchmark", "baseline ns", "fresh ns", "change"
    );
    for base in baseline {
        let Some(now) = fresh.iter().find(|r| r.id == base.id) else {
            println!("  {:<52} missing from fresh results: FAIL", base.id);
            failures += 1;
            continue;
        };
        // Throughput regression: how much of the baseline's throughput
        // (iterations per second) was lost.
        let regression = 1.0 - base.median_ns / now.median_ns;
        let ok = regression <= max_regression;
        println!(
            "  {:<52} {:>12.0} {:>12.0} {:>+8.1}%  {}",
            base.id,
            base.median_ns,
            now.median_ns,
            100.0 * regression,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    for now in fresh {
        if !baseline.iter().any(|r| r.id == now.id) {
            println!("  {:<52} new benchmark (no baseline committed yet)", now.id);
        }
    }
    failures
}

/// A `--ratio NUM_ID,DEN_ID` gate.
#[derive(Debug, Clone, PartialEq)]
struct RatioSpec {
    numerator: String,
    denominator: String,
}

impl RatioSpec {
    fn parse(value: &str) -> Result<Self, String> {
        match value.split_once(',') {
            Some((numerator, denominator)) if !numerator.is_empty() && !denominator.is_empty() => {
                Ok(RatioSpec {
                    numerator: numerator.to_string(),
                    denominator: denominator.to_string(),
                })
            }
            _ => Err(format!("--ratio needs NUM_ID,DEN_ID, not `{value}`")),
        }
    }
}

fn median_of(records: &[Record], id: &str, side: &str) -> Result<f64, String> {
    records
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.median_ns)
        .ok_or_else(|| format!("ratio gate: id `{id}` missing from {side} results"))
}

/// Compares the machine-independent ratio gates; returns the number of
/// failures.
fn compare_ratios(
    baseline: &[Record],
    fresh: &[Record],
    ratios: &[RatioSpec],
    max_ratio_regression: f64,
) -> Result<u32, String> {
    if ratios.is_empty() {
        return Ok(0);
    }
    let mut failures = 0;
    println!(
        "ratio gates (same-run quotients; machine speed cancels, \
         >{:.0}% loss fails):",
        100.0 * max_ratio_regression
    );
    println!(
        "  {:<72} {:>9} {:>9} {:>9}  verdict",
        "numerator / denominator", "baseline", "fresh", "change"
    );
    for spec in ratios {
        let base_ratio = median_of(baseline, &spec.numerator, "baseline")?
            / median_of(baseline, &spec.denominator, "baseline")?;
        let fresh_ratio = median_of(fresh, &spec.numerator, "fresh")?
            / median_of(fresh, &spec.denominator, "fresh")?;
        // How much of the baseline advantage was lost (a shrinking ratio
        // means the denominator's relative edge degraded).
        let regression = 1.0 - fresh_ratio / base_ratio;
        let ok = regression <= max_ratio_regression;
        println!(
            "  {:<72} {:>8.2}x {:>8.2}x {:>+8.1}%  {}",
            format!("{} / {}", spec.numerator, spec.denominator),
            base_ratio,
            fresh_ratio,
            -100.0 * regression,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    Ok(failures)
}

fn run(args: &[String]) -> Result<u32, String> {
    let mut baselines = Vec::new();
    let mut fresh = Vec::new();
    let mut ratios = Vec::new();
    let mut max_regression: f64 = std::env::var("BENCH_CHECK_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let mut max_ratio_regression: f64 = std::env::var("BENCH_CHECK_MAX_RATIO_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let value = iter
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--baseline" => baselines.push(value.clone()),
            "--fresh" => fresh.push(value.clone()),
            "--ratio" => ratios.push(RatioSpec::parse(value)?),
            "--max-regression" => {
                max_regression = value
                    .parse()
                    .map_err(|_| "--max-regression needs a number".to_string())?;
            }
            "--max-ratio-regression" => {
                max_ratio_regression = value
                    .parse()
                    .map_err(|_| "--max-ratio-regression needs a number".to_string())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if baselines.is_empty() || baselines.len() != fresh.len() {
        return Err("need matching --baseline/--fresh pairs".to_string());
    }
    println!(
        "bench_check: failing on >{:.0}% throughput regression",
        100.0 * max_regression
    );
    let mut failures = 0;
    let mut all_baseline = Vec::new();
    let mut all_fresh = Vec::new();
    for (baseline_path, fresh_path) in baselines.iter().zip(&fresh) {
        let baseline = load(baseline_path)?;
        let fresh = load(fresh_path)?;
        failures += compare(baseline_path, &baseline, fresh_path, &fresh, max_regression);
        all_baseline.extend(baseline);
        all_fresh.extend(fresh);
    }
    failures += compare_ratios(&all_baseline, &all_fresh, &ratios, max_ratio_regression)?;
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => {
            println!("bench_check: all benchmarks within tolerance");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("bench_check: {failures} benchmark(s) regressed");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("bench_check: error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"id": "g/a", "samples": 10, "iters_per_sample": 1, "median_ns": 1000.0, "min_ns": 900.0, "max_ns": 1100.0},
  {"id": "g/b", "samples": 10, "iters_per_sample": 2, "median_ns": 500.0, "min_ns": 450.0, "max_ns": 600.0}
]
"#;

    #[test]
    fn parses_the_shim_format() {
        let records = parse_records(SAMPLE, "sample").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "g/a");
        assert_eq!(records[0].median_ns, 1000.0);
        assert_eq!(records[1].median_ns, 500.0);
        assert!(parse_records("[]", "empty").is_err());
        assert!(parse_records("[{\"median_ns\": 1.0}]", "no-id").is_err());
        assert!(parse_records("[{\"id\": \"x\"}]", "no-median").is_err());
    }

    fn record(id: &str, median_ns: f64) -> Record {
        Record {
            id: id.into(),
            median_ns,
        }
    }

    #[test]
    fn ratio_specs_parse() {
        let spec = RatioSpec::parse("g/slow,g/fast").unwrap();
        assert_eq!(spec.numerator, "g/slow");
        assert_eq!(spec.denominator, "g/fast");
        assert!(RatioSpec::parse("no-comma").is_err());
        assert!(RatioSpec::parse(",half").is_err());
        assert!(RatioSpec::parse("half,").is_err());
    }

    #[test]
    fn ratio_gate_is_machine_independent() {
        let spec = RatioSpec::parse("g/slow,g/fast").unwrap();
        // Baseline: slow path is 8x the fast path.
        let baseline = vec![record("g/slow", 8000.0), record("g/fast", 1000.0)];
        // A machine 3x slower overall keeps the ratio: passes.
        let scaled = vec![record("g/slow", 24000.0), record("g/fast", 3000.0)];
        assert_eq!(
            compare_ratios(&baseline, &scaled, std::slice::from_ref(&spec), 0.25).unwrap(),
            0
        );
        // The fast path losing its edge (8x -> 4x = 50% ratio loss): fails.
        let degraded = vec![record("g/slow", 8000.0), record("g/fast", 2000.0)];
        assert_eq!(
            compare_ratios(&baseline, &degraded, std::slice::from_ref(&spec), 0.25).unwrap(),
            1
        );
        // The fast path getting faster (8x -> 16x) never fails.
        let improved = vec![record("g/slow", 8000.0), record("g/fast", 500.0)];
        assert_eq!(
            compare_ratios(&baseline, &improved, std::slice::from_ref(&spec), 0.25).unwrap(),
            0
        );
        // Missing ids are configuration errors, not passes.
        assert!(compare_ratios(&baseline, &[record("g/slow", 1.0)], &[spec], 0.25).is_err());
    }

    #[test]
    fn regression_arithmetic() {
        // Fresh 25% slower in time = 20% throughput regression: passes at
        // the default tolerance; fresh 2x slower = 50% regression: fails.
        let base = Record {
            id: "x".into(),
            median_ns: 1000.0,
        };
        for (fresh_ns, limit, ok) in [
            (1250.0, 0.25, true),
            (1333.0, 0.25, true),
            (2000.0, 0.25, false),
            (900.0, 0.25, true),
        ] {
            let regression = 1.0 - base.median_ns / fresh_ns;
            assert_eq!(regression <= limit, ok, "fresh {fresh_ns}");
        }
    }
}
