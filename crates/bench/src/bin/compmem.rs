//! The `compmem` command-line tool: record, replay, profile and sweep
//! traces — one-shot, or through the `compmem serve` daemon. The worked
//! end-to-end session lives in `docs/CLI.md`.
//!
//! Usage:
//!
//! ```text
//! compmem record       --app jpeg_canny|mpeg2 [--scale paper|small|tiny]
//!                      [--org shared|way-partitioned|profiling] --out FILE
//! compmem gen          --kind zipf|scan|chase|phased|mix --out FILE [--seed N]
//!                      [--accesses N] [--ws-kb N] [--footprint-kb N] [--hot-kb N]
//!                      [--scan-kb N] [--phase-accesses N] [--cycles-per-access N]
//!                      [--tasks family[:SIZE][xMULT],...]
//! compmem replay       --trace FILE [--org ORG] [--l2-kb N] [--ways N]
//!                      [--policy lru|fifo|tree-plru|random] [--lanes N] [--jobs N]
//!                      [--qos RATE|key=rate,... [--sets-per-unit N] [--solve KIND]]
//!                      [--schedule phases|PATH [--sets-per-unit N] [--windows N]
//!                       [--phases DELTA] [--solve KIND] [--save-schedule PATH]]
//!                      [--controller greedy|hysteresis|oracle|compete
//!                       --window-cycles N [--sets-per-unit N] [--phases DELTA]
//!                       [--margin M] [--solve KIND]]
//! compmem sweep        --trace FILE [--l2-kb N[,N...]] [--ways N] [--jobs N] [--lanes N]
//! compmem profile      --trace FILE [--l2-kb N] [--ways N] [--sets-per-unit N]
//!                      [--solve exact-ilp|greedy|equal-split]
//!                      [--windows N | --window-cycles N] [--phases DELTA]
//!                      [--save-curves auto|off|PATH] [--lanes N] [--jobs N]
//! compmem sweep-shapes --trace FILE [--l2-kb N] [--ways N] [--sets-per-unit N]
//!                      [--check-replay on|off] [--save-curves auto|off|PATH]
//! compmem info         --trace FILE [--schedule PATH] [--l2-kb N] [--ways N]
//! compmem serve        [--store DIR] [--port N] [--jobs N] [--background on|off]
//! compmem client VERB  [--port N] [--trace FILE | --hash HEX] [flags...]
//! ```
//!
//! The one-shot subcommands are documented in `compmem_bench::cli`, whose
//! command functions this binary runs against stdout. `serve` starts the
//! scenario-evaluation daemon: a content-hash-addressed store of traces
//! and `.curves` sidecars behind a local TCP socket (see
//! `compmem_platform::serve` and the "Service layer" section of
//! `docs/ARCHITECTURE.md`). `client` talks to it: `put` uploads a trace,
//! `profile` / `sweep-shapes` / `schedule` / `info` evaluate commands
//! over a stored trace (`--trace FILE` uploads-and-uses in one step;
//! `--hash HEX` names an already stored trace), `stats` prints the
//! daemon's counters and `shutdown` stops it cleanly. Every other flag is
//! forwarded verbatim to the daemon, and the response bytes are exactly
//! what the equivalent one-shot invocation would print — the parity
//! contract CI's `serve-smoke` job enforces.

use std::io::Write;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use compmem_bench::cli;
use compmem_bench::service::{run_serve, ServeOptions};
use compmem_platform::{ServeClient, ServeRequest, ServeResponse, ServeStats};
use compmem_trace::trace_content_hash;

/// Default TCP port of `compmem serve` (a fixed local port so client
/// invocations need no configuration).
const DEFAULT_PORT: &str = "7177";

fn usage() {
    eprintln!(
        "usage:\n  compmem record --app jpeg_canny|mpeg2 [--scale paper|small|tiny] \
         [--org shared|way-partitioned|profiling] --out FILE\n  compmem gen \
         --kind zipf|scan|chase|phased|mix --out FILE [--seed N] [--accesses N] \
         [--ws-kb N] [--footprint-kb N] [--hot-kb N] [--scan-kb N] [--phase-accesses N] \
         [--cycles-per-access N] [--tasks family[:SIZE][xMULT],...]\n  \
         compmem replay --trace FILE \
         [--org ORG] [--l2-kb N] [--ways N] [--policy lru|fifo|tree-plru|random] \
         [--lanes N] [--jobs N] \
         [--qos RATE|key=rate,... [--sets-per-unit N] [--solve KIND]] \
         [--schedule phases|PATH [--sets-per-unit N] [--windows N] [--phases DELTA] \
         [--solve KIND] [--save-schedule PATH]] \
         [--controller greedy|hysteresis|oracle|compete --window-cycles N \
         [--sets-per-unit N] [--phases DELTA] [--margin M] [--solve KIND]]\n  \
         compmem sweep --trace FILE [--l2-kb N[,N...]] [--ways N] [--jobs N] [--lanes N]\n  \
         compmem profile --trace FILE [--l2-kb N] [--ways N] [--sets-per-unit N] \
         [--solve exact-ilp|greedy|equal-split] [--windows N | --window-cycles N] \
         [--phases DELTA] [--save-curves auto|off|PATH] [--lanes N] [--jobs N]\n  \
         compmem sweep-shapes --trace FILE [--l2-kb N] [--ways N] [--sets-per-unit N] \
         [--check-replay on|off] [--jobs N] [--lanes N] [--save-curves auto|off|PATH]\n  \
         compmem info --trace FILE [--schedule PATH] [--l2-kb N] [--ways N]\n  \
         compmem serve [--store DIR] [--port N] [--jobs N] [--background on|off]\n  \
         compmem client put|profile|sweep-shapes|schedule|info|stats|shutdown \
         [--port N] [--trace FILE | --hash HEX] [forwarded flags...]\n\
         (--jobs N bounds the worker pool of a sweep — default: the host's available \
         parallelism — and runs the L1 filter pass of a replay/profile \
         segment-parallel; --lanes N splits a replay or profiling pass into \
         per-partition-key lanes, required on replay and opportunistic on sweep; \
         serve answers sidecar-covered requests analytically and queues the rest \
         on --jobs workers shared by all clients)"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "record" | "gen" | "replay" | "sweep" | "profile" | "sweep-shapes" | "info" => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            cli::dispatch(command, &args[1..], &mut out)
        }
        "serve" => serve(&args[1..]),
        "client" => client(&args[1..]),
        "--help" | "-h" | "help" => {
            usage();
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: every option takes one value (the same contract
/// as `compmem_bench::cli::parse_flags`, duplicated here for the two
/// daemon-side subcommands so the cli module stays sink-pure).
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        out.push((name.to_string(), value.clone()));
    }
    Ok(out)
}

fn get<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let store = get(&flags, "store").unwrap_or("store").to_string();
    let port = get(&flags, "port").unwrap_or(DEFAULT_PORT);
    let port: u16 = port
        .parse()
        .map_err(|_| "--port needs a port number".to_string())?;
    let jobs = match get(&flags, "jobs") {
        None => compmem::executor::default_jobs(),
        Some(value) => match value.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err("--jobs needs a number of at least 1".to_string()),
        },
    };
    let background = match get(&flags, "background").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--background needs on or off, not `{other}`")),
    };
    let options = ServeOptions {
        store,
        addr: format!("127.0.0.1:{port}"),
        jobs,
    };
    if background {
        serve_background(&options, port, jobs)
    } else {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        run_serve(&options, &mut out)
    }
}

/// Re-executes this binary as a detached foreground daemon with its
/// output redirected to `<store>/serve.log`, waits until the socket
/// accepts connections, and returns. The child must not inherit stdout:
/// scripts capture `compmem serve --background on` with command
/// substitution, which would otherwise block until the daemon exits.
fn serve_background(options: &ServeOptions, port: u16, jobs: usize) -> Result<(), String> {
    std::fs::create_dir_all(&options.store)
        .map_err(|e| format!("cannot create store {}: {e}", options.store))?;
    let log_path = std::path::Path::new(&options.store).join("serve.log");
    let log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)
        .map_err(|e| format!("cannot open {}: {e}", log_path.display()))?;
    let log_err = log
        .try_clone()
        .map_err(|e| format!("cannot clone log handle: {e}"))?;
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut child = std::process::Command::new(exe)
        .args([
            "serve",
            "--store",
            &options.store,
            "--port",
            &port.to_string(),
            "--jobs",
            &jobs.to_string(),
            "--background",
            "off",
        ])
        .stdin(std::process::Stdio::null())
        .stdout(log)
        .stderr(log_err)
        .spawn()
        .map_err(|e| format!("cannot spawn daemon: {e}"))?;
    // Wait for the daemon to accept — or to die early (port in use,
    // unwritable store), in which case surface its exit instead of
    // spinning for the full timeout.
    let addr = format!("127.0.0.1:{port}");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if TcpStream::connect(&addr).is_ok() {
            break;
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!(
                "daemon exited during startup ({status}); see {}",
                log_path.display()
            ));
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "daemon did not start listening on {addr} within 10s; see {}",
                log_path.display()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "compmem serve: daemon running on {addr} (pid {}, log {})",
        child.id(),
        log_path.display()
    );
    Ok(())
}

fn client(args: &[String]) -> Result<(), String> {
    let Some(verb) = args.first() else {
        return Err(
            "client needs a verb: put, profile, sweep-shapes, schedule, info, stats or shutdown"
                .to_string(),
        );
    };
    let flags = parse_flags(&args[1..])?;
    let port = get(&flags, "port").unwrap_or(DEFAULT_PORT);
    let addr = format!("127.0.0.1:{port}");
    let mut client = ServeClient::connect(&addr).map_err(|e| e.to_string())?;

    match verb.as_str() {
        "put" => {
            let path = get(&flags, "trace").ok_or("client put needs --trace FILE")?;
            let (hash, existed) = put_trace(&mut client, path)?;
            println!(
                "stored trace {hash:016x} from {path}{}",
                if existed { " (already present)" } else { "" }
            );
            Ok(())
        }
        "stats" => match client
            .request(&ServeRequest::Stats)
            .map_err(|e| e.to_string())?
        {
            ServeResponse::Stats(stats) => {
                print_stats(&stats);
                Ok(())
            }
            other => Err(format!("unexpected response {other:?}")),
        },
        "shutdown" => {
            match client
                .request(&ServeRequest::Shutdown)
                .map_err(|e| e.to_string())?
            {
                ServeResponse::ShuttingDown => {
                    println!("daemon on {addr} is shutting down");
                    Ok(())
                }
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        command_verb @ ("profile" | "sweep-shapes" | "schedule" | "info") => {
            let hash = match (get(&flags, "hash"), get(&flags, "trace")) {
                (Some(_), Some(_)) => {
                    return Err("--hash and --trace are exclusive".to_string());
                }
                (Some(hex), None) => u64::from_str_radix(hex, 16)
                    .map_err(|_| format!("--hash needs a hex content hash, not `{hex}`"))?,
                (None, Some(path)) => put_trace(&mut client, path)?.0,
                (None, None) => {
                    return Err(format!(
                        "client {command_verb} needs --trace FILE (upload and use) \
                         or --hash HEX (an already stored trace)"
                    ));
                }
            };
            // Forward every flag except the client-side ones, preserving
            // the original order (parity requires the daemon to see the
            // argv a one-shot invocation would).
            let forwarded: Vec<String> = flags
                .iter()
                .filter(|(name, _)| !matches!(name.as_str(), "port" | "trace" | "hash"))
                .flat_map(|(name, value)| [format!("--{name}"), value.clone()])
                .collect();
            let request = ServeRequest::Command {
                trace: hash,
                verb: command_verb.to_string(),
                args: forwarded,
            };
            match client.request(&request).map_err(|e| e.to_string())? {
                ServeResponse::Output { bytes } => {
                    let stdout = std::io::stdout();
                    let mut out = stdout.lock();
                    out.write_all(&bytes)
                        .and_then(|()| out.flush())
                        .map_err(|e| format!("cannot write response: {e}"))
                }
                ServeResponse::Error { kind, message } => {
                    Err(format!("daemon refused ({}): {message}", kind.label()))
                }
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        other => Err(format!(
            "unknown client verb `{other}` (use put, profile, sweep-shapes, schedule, \
             info, stats or shutdown)"
        )),
    }
}

/// Uploads a trace file and returns its content hash. Validates the hash
/// locally first so a corrupt upload fails client-side with the file
/// name, and cross-checks the daemon's answer.
fn put_trace(client: &mut ServeClient, path: &str) -> Result<(u64, bool), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let local_hash = trace_content_hash(&bytes);
    match client
        .request(&ServeRequest::PutTrace { bytes })
        .map_err(|e| e.to_string())?
    {
        ServeResponse::PutOk { hash, existed } => {
            if hash != local_hash {
                return Err(format!(
                    "daemon stored {path} as {hash:016x} but its local hash is \
                     {local_hash:016x}"
                ));
            }
            Ok((hash, existed))
        }
        ServeResponse::Error { kind, message } => {
            Err(format!("daemon refused ({}): {message}", kind.label()))
        }
        other => Err(format!("unexpected response {other:?}")),
    }
}

fn print_stats(stats: &ServeStats) {
    println!("traces stored   {}", stats.traces);
    println!("puts handled    {}", stats.puts);
    println!("cache hits      {}", stats.cache_hits);
    println!("cache misses    {}", stats.cache_misses);
    println!("errors          {}", stats.errors);
}
