//! The `compmem` command-line tool: record, replay and sweep traces.
//!
//! Usage:
//!
//! ```text
//! compmem record  --app jpeg_canny|mpeg2 [--scale paper|small|tiny]
//!                 [--org shared|way-partitioned|profiling] --out FILE
//! compmem replay  --trace FILE [--org ORG] [--l2-kb N] [--ways N]
//!                 [--policy lru|fifo|tree-plru|random]
//! compmem sweep   --trace FILE [--l2-kb N[,N...]] [--ways N]
//! compmem profile --trace FILE [--l2-kb N] [--ways N] [--sets-per-unit N]
//!                 [--solve exact-ilp|greedy|equal-split]
//! compmem info    --trace FILE
//! ```
//!
//! `record` executes an application live on the discrete-event simulator
//! and streams every memory access into the binary trace IR (see
//! `compmem_trace::codec`). `replay` re-issues a recorded trace through a
//! freshly built hierarchy — under the organisation it was recorded with,
//! the cache statistics are bit-identical to the live run. `sweep` replays
//! one trace over the organisations (shared, set-partitioned equal-split,
//! way-partitioned) at one or more L2 sizes, which is the record-once /
//! sweep-many workflow the subsystem exists for. `profile` runs the
//! single-pass stack-distance profiler over a recorded trace: one pass
//! yields every entity's exact miss count at every partition size of the
//! lattice — the `m_i(S_k)` inputs of the paper's optimiser — and the
//! partition sizing the chosen solver derives from them.

use std::process::ExitCode;
use std::sync::Arc;

use compmem::experiment::{
    allocation_problem_for_table, run_replay, Experiment, RunOutcome, ScenarioSpec,
};
use compmem::{CoreError, OptimizerKind};
use compmem_bench::{jpeg_canny_experiment, mpeg2_experiment, Scale};
use compmem_cache::{
    CacheConfig, CacheSizeLattice, CurveResolution, OrganizationSpec, PartitionKey, PartitionMap,
    ReplacementPolicy, WayAllocation,
};
use compmem_platform::{profile_trace, PlatformConfig, PreparedTrace};
use compmem_trace::{EncodedTrace, RegionTable};
use compmem_workloads::apps::Application;

fn usage() {
    eprintln!(
        "usage:\n  compmem record --app jpeg_canny|mpeg2 [--scale paper|small|tiny] \
         [--org shared|way-partitioned|profiling] --out FILE\n  compmem replay --trace FILE \
         [--org ORG] [--l2-kb N] [--ways N] [--policy lru|fifo|tree-plru|random]\n  \
         compmem sweep --trace FILE [--l2-kb N[,N...]] [--ways N]\n  \
         compmem profile --trace FILE [--l2-kb N] [--ways N] [--sets-per-unit N] \
         [--solve exact-ilp|greedy|equal-split]\n  compmem info --trace FILE"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "record" => record(&args[1..]),
        "replay" => replay(&args[1..]),
        "sweep" => sweep(&args[1..]),
        "profile" => profile(&args[1..]),
        "info" => info(&args[1..]),
        "--help" | "-h" | "help" => {
            usage();
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: every option takes one value.
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        out.push((name.to_string(), value.clone()));
    }
    Ok(out)
}

fn get<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn record(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let app = get(&flags, "app").ok_or("record needs --app jpeg_canny|mpeg2")?;
    let out = get(&flags, "out").ok_or("record needs --out FILE")?;
    let scale = match get(&flags, "scale") {
        None => Scale::Small,
        Some(name) => Scale::parse(name).ok_or_else(|| format!("unknown scale `{name}`"))?,
    };
    let org = get(&flags, "org").unwrap_or("shared");

    let (outcome, trace) = match app {
        "jpeg_canny" => record_with(&jpeg_canny_experiment(scale), org)?,
        "mpeg2" => record_with(&mpeg2_experiment(scale), org)?,
        other => return Err(format!("unknown app `{other}` (use jpeg_canny or mpeg2)")),
    };
    trace.trace().write_to(out).map_err(|e| e.to_string())?;
    let summary = trace.summary();
    println!(
        "recorded {app} ({org} L2): {} accesses in {} runs on {} processors",
        summary.accesses, summary.runs, summary.processors
    );
    println!(
        "  live run: {} cycles makespan, L2 miss rate {:.2}%",
        outcome.report.makespan_cycles,
        100.0 * outcome.report.l2_miss_rate()
    );
    println!(
        "  wrote {out}: {} bytes ({:.2} bytes/access)",
        summary.encoded_bytes,
        summary.bytes_per_access()
    );
    Ok(())
}

fn record_with<F: Fn() -> Application>(
    experiment: &Experiment<F>,
    org: &str,
) -> Result<(RunOutcome, Arc<PreparedTrace>), String> {
    let spec = match org {
        "shared" => experiment.shared_spec(),
        "way-partitioned" => experiment.way_partitioned_spec(),
        "profiling" => experiment.profiling_spec(),
        other => {
            return Err(format!(
            "cannot record under organisation `{other}` (use shared, way-partitioned or profiling)"
        ))
        }
    };
    experiment.record_trace(&spec).map_err(|e| e.to_string())
}

fn load_trace(flags: &[(String, String)]) -> Result<Arc<PreparedTrace>, String> {
    let path = get(flags, "trace").ok_or("missing --trace FILE")?;
    EncodedTrace::read_from(path)
        .map(|trace| Arc::new(PreparedTrace::from(trace)))
        .map_err(|e| format!("{path}: {e}"))
}

fn l2_config(flags: &[(String, String)]) -> Result<CacheConfig, String> {
    let kb: u64 = get(flags, "l2-kb")
        .unwrap_or("64")
        .parse()
        .map_err(|_| "--l2-kb needs a number".to_string())?;
    let ways: u32 = get(flags, "ways")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "--ways needs a number".to_string())?;
    let mut config = CacheConfig::with_size_bytes(kb * 1024, ways).map_err(|e| e.to_string())?;
    if let Some(name) = get(flags, "policy") {
        let policy = ReplacementPolicy::ALL
            .into_iter()
            .find(|p| p.to_string() == name)
            .ok_or_else(|| format!("unknown replacement policy `{name}`"))?;
        config = config.policy(policy);
    }
    Ok(config)
}

fn organization(
    name: &str,
    l2: CacheConfig,
    table: &RegionTable,
) -> Result<OrganizationSpec, String> {
    match name {
        "shared" => Ok(OrganizationSpec::Shared),
        "set-partitioned" => {
            let keys = PartitionKey::distinct_keys(table);
            PartitionMap::equal_split(l2.geometry(), &keys)
                .map(OrganizationSpec::SetPartitioned)
                .map_err(|e| e.to_string())
        }
        "way-partitioned" => Ok(OrganizationSpec::WayPartitioned(
            WayAllocation::equal_split(l2.geometry(), &PartitionKey::distinct_keys(table)),
        )),
        "profiling" => Ok(OrganizationSpec::Profiling(
            compmem_cache::CacheSizeLattice::new(l2.geometry(), 16),
        )),
        other => Err(format!("unknown organisation `{other}`")),
    }
}

fn print_outcome_row(label: &str, outcome: &RunOutcome) {
    let r = &outcome.report;
    println!(
        "{label:<24} {:>12} {:>12} {:>8.3}% {:>10} {:>14}",
        r.l2.accesses,
        r.l2.misses,
        100.0 * r.l2_miss_rate(),
        r.dram_accesses,
        r.makespan_cycles
    );
}

fn outcome_header() {
    println!(
        "{:<24} {:>12} {:>12} {:>9} {:>10} {:>14}",
        "organisation", "l2 accesses", "l2 misses", "missrate", "dram", "makespan"
    );
}

fn replay(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let trace = load_trace(&flags)?;
    let l2 = l2_config(&flags)?;
    let org_name = get(&flags, "org").unwrap_or("shared");
    let org = organization(org_name, l2, trace.table())?;
    let spec = ScenarioSpec::replay(l2, org, trace.clone());
    let outcome = run_replay(&PlatformConfig::default(), &spec).map_err(|e| e.to_string())?;
    println!(
        "replayed {} accesses on {} processors under `{}`",
        trace.accesses(),
        trace.processors(),
        org_name
    );
    outcome_header();
    print_outcome_row(org_name, &outcome);
    Ok(())
}

fn sweep(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let trace = load_trace(&flags)?;
    let sizes: Vec<u64> = get(&flags, "l2-kb")
        .unwrap_or("64")
        .split(',')
        .map(|s| s.parse().map_err(|_| format!("bad L2 size `{s}`")))
        .collect::<Result<_, _>>()?;
    let ways: u32 = get(&flags, "ways")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "--ways needs a number".to_string())?;
    let platform = PlatformConfig::default();

    println!(
        "sweeping {} organisations x {} L2 sizes over {} recorded accesses",
        3,
        sizes.len(),
        trace.accesses()
    );
    for &kb in &sizes {
        let l2 = CacheConfig::with_size_bytes(kb * 1024, ways).map_err(|e| e.to_string())?;
        println!("\nL2 = {kb} KB, {ways}-way:");
        outcome_header();
        // The three organisations replay the identical traffic; failures
        // (e.g. more entities than ways) are reported per row.
        let specs: Vec<(String, Result<ScenarioSpec, String>)> =
            ["shared", "set-partitioned", "way-partitioned"]
                .into_iter()
                .map(|name| {
                    let spec = organization(name, l2, trace.table())
                        .map(|org| ScenarioSpec::replay(l2, org, trace.clone()));
                    (name.to_string(), spec)
                })
                .collect();
        let outcomes: Vec<(String, Result<RunOutcome, String>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .into_iter()
                .map(|(name, spec)| {
                    let platform = &platform;
                    scope.spawn(move || {
                        let outcome = spec.and_then(|spec| {
                            run_replay(platform, &spec).map_err(|e: CoreError| e.to_string())
                        });
                        (name, outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        for (name, outcome) in &outcomes {
            match outcome {
                Ok(outcome) => print_outcome_row(name, outcome),
                Err(e) => println!("{name:<24} (skipped: {e})"),
            }
        }
    }
    Ok(())
}

fn profile(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let trace = load_trace(&flags)?;
    let l2 = l2_config(&flags)?;
    let geometry = l2.geometry();
    let sets_per_unit: u32 = get(&flags, "sets-per-unit")
        .unwrap_or("16")
        .parse()
        .map_err(|_| "--sets-per-unit needs a number".to_string())?;
    let resolution =
        CurveResolution::for_geometry(geometry, sets_per_unit).map_err(|e| e.to_string())?;
    let lattice = CacheSizeLattice::new(geometry, sets_per_unit);
    let kind = match get(&flags, "solve").unwrap_or("exact-ilp") {
        "exact-ilp" => OptimizerKind::ExactIlp,
        "greedy" => OptimizerKind::Greedy,
        "equal-split" => OptimizerKind::EqualSplit,
        other => return Err(format!("unknown solver `{other}`")),
    };

    let platform = PlatformConfig::default();
    let curves = profile_trace(&platform, &trace, resolution).map_err(|e| e.to_string())?;
    let profiles = curves
        .to_profiles(&lattice, geometry.ways())
        .map_err(|e| e.to_string())?;

    let l2_bound: u64 = curves.curves.values().map(|c| c.accesses).sum();
    println!(
        "profiled {} recorded accesses ({} L2-bound after the L1 filter) in one pass",
        trace.accesses(),
        l2_bound
    );
    println!(
        "misses per entity by exclusive partition size ({} sets = {} B per unit):",
        sets_per_unit,
        lattice.unit_bytes(geometry)
    );
    print!("{:<16} {:>10}", "entity", "accesses");
    for &units in &lattice.candidate_units {
        print!(" {:>9}", format!("{units}u"));
    }
    println!();
    for (key, profile) in &profiles.profiles {
        print!("{:<16} {:>10}", key.to_string(), profile.accesses);
        for &units in &lattice.candidate_units {
            print!(" {:>9}", profile.misses_at(units));
        }
        println!();
    }

    let problem = allocation_problem_for_table(trace.table(), &lattice, geometry, profiles.clone());
    let allocation = compmem::optimizer::solve(&problem, kind).map_err(|e| e.to_string())?;
    println!(
        "\n{kind} allocation over {} units ({} used, {} predicted misses):",
        lattice.total_units, allocation.total_units, allocation.predicted_misses
    );
    for (key, &units) in allocation.iter() {
        println!(
            "  {:<16} {:>4} units = {:>5} sets",
            key.to_string(),
            units,
            lattice.sets_of(units)
        );
    }
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let trace = load_trace(&flags)?;
    let summary = trace.summary();
    println!(
        "{} accesses in {} runs on {} processors; {} bytes ({:.2} bytes/access)",
        summary.accesses,
        summary.runs,
        summary.processors,
        summary.encoded_bytes,
        summary.bytes_per_access()
    );
    println!("{} regions:", trace.table().len());
    for region in trace.table().iter() {
        println!("  {region}");
    }
    Ok(())
}
