//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--scale paper|small] [section ...]
//! ```
//!
//! Sections: `table1`, `table2`, `figure2`, `figure3`, `headline`,
//! `ablation-ways`, `ablation-optimizer`, `ablation-fifo`, or `all`
//! (default). The `paper` scale reproduces the numbers recorded in
//! EXPERIMENTS.md; the `small` scale finishes in a few seconds.

use std::collections::BTreeSet;

use compmem::experiment::PaperFlowOutcome;
use compmem::report;
use compmem_bench::{
    jpeg_canny_experiment, jpeg_canny_organization_sweep, mpeg2_experiment, run_jpeg_canny_flow,
    run_mpeg2_flow, Scale,
};
use compmem_cache::PartitionKey;

fn main() {
    let mut scale = Scale::Paper;
    let mut sections: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = Scale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale `{value}` (expected `paper` or `small`)");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale paper|small] [table1 table2 figure2 figure3 headline \
                     ablation-ways ablation-optimizer ablation-fifo | all]"
                );
                return;
            }
            other => {
                sections.insert(other.to_string());
            }
        }
    }
    if sections.is_empty() {
        sections.insert("all".to_string());
    }
    let all = sections.contains("all");
    let wants = |name: &str| all || sections.contains(name);

    let needs_app1 = wants("table1")
        || wants("figure2")
        || wants("figure3")
        || wants("headline")
        || wants("ablation-ways")
        || wants("ablation-optimizer")
        || wants("ablation-fifo");
    let needs_app2 = wants("table2") || wants("figure2") || wants("figure3") || wants("headline");

    eprintln!(
        "running at {scale:?} scale; this performs full-system simulations and may take a while"
    );

    // The two applications are independent: run their flows in parallel.
    let (app1, app2) = std::thread::scope(|scope| {
        let h1 = scope.spawn(|| needs_app1.then(|| run_jpeg_canny_flow(scale)));
        let h2 = scope.spawn(|| needs_app2.then(|| run_mpeg2_flow(scale)));
        (
            h1.join().expect("app1 thread"),
            h2.join().expect("app2 thread"),
        )
    });

    let app1: Option<PaperFlowOutcome> = app1.map(|r| r.expect("application 1 flow"));
    let app2: Option<PaperFlowOutcome> = app2.map(|r| r.expect("application 2 flow"));

    if wants("table1") {
        let outcome = app1.as_ref().expect("app1 computed");
        println!("== Table 1: L2 allocated sets for 2 jpegs & canny ==");
        println!("{}", report::format_allocation_table(outcome));
    }
    if wants("table2") {
        let outcome = app2.as_ref().expect("app2 computed");
        println!("== Table 2: L2 allocated sets for mpeg2 ==");
        println!("{}", report::format_allocation_table(outcome));
    }
    if wants("figure2") {
        for outcome in [&app1, &app2].into_iter().flatten() {
            println!("== Figure 2 ({}) ==", outcome.app_name);
            println!("{}", report::format_figure2(outcome));
        }
    }
    if wants("figure3") {
        for outcome in [&app1, &app2].into_iter().flatten() {
            println!("== Figure 3 ({}) ==", outcome.app_name);
            println!("{}", report::format_figure3(outcome));
        }
    }
    if wants("headline") {
        for outcome in [&app1, &app2].into_iter().flatten() {
            println!("== Headline metrics ({}) ==", outcome.app_name);
            println!("{}", report::format_headline(outcome));
        }
        if let Some(outcome) = app2.as_ref() {
            // The paper's extra data point: MPEG-2 on a larger shared L2.
            let experiment = mpeg2_experiment(scale);
            let large = experiment
                .run(&experiment.shared_spec_with_l2(scale.large_l2()))
                .expect("large shared L2 run");
            println!(
                "mpeg2 with larger shared L2: miss rate {:.2}% ({} misses), CPI {:.2}",
                100.0 * large.report.l2_miss_rate(),
                large.report.l2.misses,
                large.report.average_cpi()
            );
            println!(
                "(partitioned 512 KB reaches {:.2}% with exclusive partitions)",
                100.0 * outcome.partitioned_miss_rate()
            );
        }
    }
    if wants("ablation-ways") {
        let outcome = app1.as_ref().expect("app1 computed");
        // The shared, way-partitioned and larger-shared runs are
        // independent of the flow: run them concurrently.
        let sweep = jpeg_canny_organization_sweep(scale).expect("organisation sweep");
        println!("== Ablation: set partitioning vs way partitioning (2 jpegs & canny) ==");
        println!(
            "{:<34} {:>12} {:>10}",
            "organisation", "L2 misses", "miss rate"
        );
        println!(
            "{:<34} {:>12} {:>9.2}%",
            "shared",
            sweep.shared.report.l2.misses,
            100.0 * sweep.shared.report.l2_miss_rate()
        );
        println!(
            "{:<34} {:>12} {:>9.2}%",
            "set-partitioned (paper)",
            outcome.partitioned.report.l2.misses,
            100.0 * outcome.partitioned_miss_rate()
        );
        println!(
            "{:<34} {:>12} {:>9.2}%",
            "way-partitioned (column caching)",
            sweep.way_partitioned.report.l2.misses,
            100.0 * sweep.way_partitioned.report.l2_miss_rate()
        );
        println!(
            "{:<34} {:>12} {:>9.2}%",
            "shared (larger L2)",
            sweep.large_shared.report.l2.misses,
            100.0 * sweep.large_shared.report.l2_miss_rate()
        );
        println!();
    }
    if wants("ablation-optimizer") {
        let outcome = app1.as_ref().expect("app1 computed");
        let experiment = jpeg_canny_experiment(scale);
        let reference = scale.jpeg_canny_params();
        let app = compmem_workloads::apps::jpeg_canny_app(&reference).expect("app builds");
        let allocations = experiment
            .compare_optimizers(app.space.table(), &outcome.profiles)
            .expect("optimizer comparison");
        println!("== Ablation: partition-sizing strategies (2 jpegs & canny) ==");
        println!(
            "{:<14} {:>16} {:>12}",
            "strategy", "predicted misses", "units used"
        );
        for allocation in allocations {
            println!(
                "{:<14} {:>16} {:>12}",
                allocation.kind.to_string(),
                allocation.predicted_misses,
                allocation.total_units
            );
        }
        println!();
    }
    if wants("ablation-fifo") {
        let outcome = app1.as_ref().expect("app1 computed");
        println!("== Ablation: FIFO partition sizing (2 jpegs & canny) ==");
        println!(
            "{:<30} {:>10} {:>14} {:>14}",
            "fifo", "units", "misses @1 unit", "misses @alloc"
        );
        for (&key, &units) in outcome.allocation.iter() {
            if let PartitionKey::Buffer(_) = key {
                if let Some(profile) = outcome.profiles.profile(key) {
                    let name = outcome.key_name(key);
                    if !name.starts_with("fifo") {
                        continue;
                    }
                    println!(
                        "{:<30} {:>10} {:>14} {:>14}",
                        name,
                        units,
                        profile.misses_at(1),
                        profile.misses_at(units)
                    );
                }
            }
        }
        println!();
    }
    eprintln!("done");
}
