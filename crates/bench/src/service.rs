//! The `compmem serve` daemon logic: command evaluation over the
//! content-addressed curve store.
//!
//! `compmem_platform::serve` owns transport and storage; this module
//! supplies the [`CommandHandler`] that gives wire requests their
//! meaning. A request names a verb (`profile`, `sweep-shapes`,
//! `schedule`, `info`), a stored trace (by content hash) and the flags
//! the one-shot CLI would take; the handler rebuilds the equivalent CLI
//! argv (`--trace <store>/<hash>.cmt` plus the forwarded flags) and runs
//! it through [`cli::dispatch`] — the *same* function the `compmem`
//! binary runs — into an in-memory buffer. The response bytes are
//! therefore byte-identical to the one-shot invocation by construction.
//!
//! The **hit/miss split**: before evaluating, the handler classifies the
//! request. `info` and any `profile`/`sweep-shapes` whose persisted
//! sidecar passes the full reuse validation (trace hash, L1 filter
//! signature, resolution, window config — the same checks
//! `profile_trace_with_sidecar` applies) are *cache hits*: they run
//! analytically on the connection thread, no L1 filter pass, no queueing.
//! Everything else is a *cache miss* and is submitted to a shared
//! [`WorkQueue`] — the front end of `executor::run_batch` — so however
//! many clients are connected, at most `jobs` measurement threads run.

use std::sync::Arc;

use compmem::executor::WorkQueue;
use compmem_cache::{CurveResolution, WindowConfig, WindowedCurves};
use compmem_platform::{
    l1_filter_signature, CommandFailure, CommandHandler, CurveStore, PlatformConfig,
    ServeErrorKind, ServedFrom, Server,
};
use compmem_trace::EncodedCurves;

use crate::cli;

/// Flags a client may not forward: the daemon owns the trace (`--trace`),
/// the worker budget (`--jobs`, `--lanes`) and the filesystem
/// (`--save-schedule`); `--schedule` is expressed by the `schedule` verb.
const FORBIDDEN_FLAGS: [&str; 5] = ["trace", "jobs", "lanes", "schedule", "save-schedule"];

/// The daemon's [`CommandHandler`]: classifies each request as a cache
/// hit (served inline) or miss (queued on the shared worker pool) and
/// evaluates it through the one-shot CLI's own command functions.
pub struct DaemonHandler {
    queue: WorkQueue<Result<Vec<u8>, String>>,
}

impl DaemonHandler {
    /// Builds a handler whose cache-miss work runs on at most `jobs`
    /// worker threads, shared across every connected client.
    pub fn new(jobs: usize) -> Self {
        DaemonHandler {
            queue: WorkQueue::start(jobs),
        }
    }

    /// Runs one command inline and captures its output bytes.
    fn run_inline(
        verb: &str,
        argv: &[String],
        preloaded: &cli::PreloadedTrace,
    ) -> Result<Vec<u8>, CommandFailure> {
        let mut buffer = Vec::new();
        cli::dispatch_preloaded(verb, argv, Some(preloaded), &mut buffer)
            .map_err(|message| CommandFailure::new(ServeErrorKind::Evaluation, message))?;
        Ok(buffer)
    }
}

impl CommandHandler for DaemonHandler {
    fn evaluate(
        &self,
        store: &CurveStore,
        trace: u64,
        verb: &str,
        args: &[String],
    ) -> Result<(Vec<u8>, ServedFrom), CommandFailure> {
        let bad = |message: String| CommandFailure::new(ServeErrorKind::BadRequest, message);
        // `schedule` is the wire name of the phase-schedule validation
        // flow (`replay --schedule phases` in the one-shot CLI).
        let (cli_verb, prefix): (&str, Vec<String>) = match verb {
            "profile" => ("profile", vec![]),
            "sweep-shapes" => ("sweep-shapes", vec![]),
            "info" => ("info", vec![]),
            "schedule" => (
                "replay",
                vec!["--schedule".to_string(), "phases".to_string()],
            ),
            other => {
                return Err(bad(format!(
                    "unknown verb `{other}` (use profile, sweep-shapes, schedule or info)"
                )))
            }
        };
        let flags = cli::parse_flags(args).map_err(bad)?;
        for (name, _) in &flags {
            if FORBIDDEN_FLAGS.contains(&name.as_str()) {
                return Err(bad(format!(
                    "--{name} cannot be forwarded to the daemon (the daemon owns the \
                     store, the schedule verb and the worker budget)"
                )));
            }
            if name == "save-curves" {
                return Err(bad(
                    "--save-curves cannot be forwarded to the daemon (the store owns \
                     its sidecars)"
                        .to_string(),
                ));
            }
        }
        if !store.contains(trace) {
            return Err(CommandFailure::new(
                ServeErrorKind::UnknownTrace,
                format!("trace {trace:016x} is not in the store (put it first)"),
            ));
        }
        let trace_path = store.trace_path(trace);
        // Hand the store's memoised decode to the evaluation: a request
        // then pays for its answer, not for re-reading the trace file.
        // Decoding is deterministic, so the bytes are unchanged.
        let preloaded = cli::PreloadedTrace {
            path: trace_path.clone(),
            trace: store
                .get(trace)
                .map_err(|e| CommandFailure::new(ServeErrorKind::Store, e.to_string()))?,
        };
        let mut argv: Vec<String> = vec![
            "--trace".to_string(),
            trace_path.to_string_lossy().into_owned(),
        ];
        argv.extend(prefix);
        argv.extend(args.iter().cloned());

        let served_from = match verb {
            // `info` is pure inspection — always analytic.
            "info" => ServedFrom::Cache,
            // `schedule` replays the trace twice — always measurement.
            "schedule" => ServedFrom::Pool,
            // `profile` / `sweep-shapes` are analytic iff the persisted
            // sidecar would pass the reuse validation.
            _ => match sidecar_answers(store, trace, verb, &argv) {
                true => ServedFrom::Cache,
                false => ServedFrom::Pool,
            },
        };

        match served_from {
            ServedFrom::Cache => Self::run_inline(cli_verb, &argv, &preloaded)
                .map(|bytes| (bytes, ServedFrom::Cache)),
            ServedFrom::Pool => {
                let cli_verb = cli_verb.to_string();
                let receiver = self.queue.submit(move || {
                    let mut buffer = Vec::new();
                    // Command failures are data, not worker errors:
                    // only a panic surfaces as CoreError.
                    Ok(
                        cli::dispatch_preloaded(&cli_verb, &argv, Some(&preloaded), &mut buffer)
                            .map(|()| buffer),
                    )
                });
                match receiver.recv() {
                    Ok(Ok(Ok(bytes))) => Ok((bytes, ServedFrom::Pool)),
                    Ok(Ok(Err(message))) => {
                        Err(CommandFailure::new(ServeErrorKind::Evaluation, message))
                    }
                    Ok(Err(core_error)) => Err(CommandFailure::new(
                        ServeErrorKind::Panic,
                        core_error.to_string(),
                    )),
                    Err(_) => Err(CommandFailure::new(
                        ServeErrorKind::Evaluation,
                        "daemon work queue disconnected".to_string(),
                    )),
                }
            }
        }
    }
}

/// Whether the persisted sidecar of this request would pass the full
/// reuse validation — the daemon-side twin of the profiling layer's
/// `try_load_sidecar` checks (trace hash, L1 filter signature,
/// resolution, window config). `false` on *any* doubt: a misclassified
/// miss merely queues an analytic request, while a misclassified hit
/// would run a measurement pass on the connection thread.
fn sidecar_answers(store: &CurveStore, trace: u64, verb: &str, argv: &[String]) -> bool {
    let Ok(flags) = cli::parse_flags(argv) else {
        return false;
    };
    let Ok(l2) = cli::l2_config(&flags) else {
        return false;
    };
    // sweep-shapes always profiles whole-run; profile follows --windows /
    // --window-cycles.
    let window = if verb == "sweep-shapes" {
        WindowConfig::whole_run()
    } else {
        match cli::window_config(&flags) {
            Ok(window) => window,
            Err(_) => return false,
        }
    };
    let Ok(Some(sidecar)) = cli::save_curves_path(&flags, &store.trace_path(trace), window) else {
        return false;
    };
    let Ok(sets_per_unit) = cli::get(&flags, "sets-per-unit").unwrap_or("16").parse() else {
        return false;
    };
    let Ok(resolution) = CurveResolution::for_geometry(l2.geometry(), sets_per_unit) else {
        return false;
    };
    let Ok(prepared) = store.get(trace) else {
        return false;
    };
    let Ok(encoded) = EncodedCurves::read_from(&sidecar) else {
        return false;
    };
    if encoded
        .validate_for_trace(prepared.trace().bytes())
        .is_err()
    {
        return false;
    }
    if encoded.header().l1_signature != l1_filter_signature(&PlatformConfig::default()) {
        return false;
    }
    let Ok(windowed) = WindowedCurves::from_sidecar(&encoded) else {
        return false;
    };
    windowed.resolution == resolution && windowed.config == window
}

/// Configuration of a `compmem serve` invocation.
pub struct ServeOptions {
    /// Store directory (created if missing). Kept as given — the paths
    /// the daemon prints embed it verbatim.
    pub store: String,
    /// Address to bind (`host:port`; port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads shared by all cache-miss requests.
    pub jobs: usize,
}

/// Opens the store, starts the daemon and runs its accept loop until a
/// shutdown request arrives. Prints the bound address and store root to
/// `out` before serving (the line clients and scripts wait for).
///
/// # Errors
///
/// The rendered bind/store error.
pub fn run_serve(options: &ServeOptions, out: &mut dyn std::io::Write) -> Result<(), String> {
    let store = Arc::new(CurveStore::open(&options.store).map_err(|e| e.to_string())?);
    let handler = DaemonHandler::new(options.jobs);
    let server = Server::bind(&options.addr, store, handler).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    writeln!(
        out,
        "compmem serve: listening on {addr} (store {}, {} jobs)",
        options.store, options.jobs
    )
    .map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    server.run().map_err(|e| e.to_string())
}
