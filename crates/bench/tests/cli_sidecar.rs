//! End-to-end test of the `compmem` CLI's curve-sidecar persistence: the
//! first `profile` invocation writes `TRACE.curves`; a second invocation
//! with the same configuration loads it back — skipping the L1 filter
//! pass — with byte-identical curves and identical profiling output.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn compmem() -> Command {
    Command::new(env!("CARGO_BIN_EXE_compmem"))
}

fn run(args: &[&str]) -> Output {
    let output = compmem().args(args).output().expect("compmem runs");
    assert!(
        output.status.success(),
        "compmem {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// The profiling payload of a `profile` run: everything after the
/// sidecar-persistence narration line.
fn payload(output: &Output) -> String {
    let text = stdout(output);
    let mut lines = text.lines();
    let first = lines.next().unwrap_or("");
    assert!(
        first.contains("curve sidecar") || first.contains("persisted curves"),
        "expected a sidecar narration line, got: {first}"
    );
    lines.collect::<Vec<_>>().join("\n")
}

fn record_tiny_trace(dir: &Path) -> PathBuf {
    let trace = dir.join("mpeg2-tiny.cmt");
    run(&[
        "record",
        "--app",
        "mpeg2",
        "--scale",
        "tiny",
        "--out",
        trace.to_str().unwrap(),
    ]);
    trace
}

#[test]
fn second_profile_invocation_reuses_the_sidecar_byte_identically() {
    let dir = std::env::temp_dir().join("compmem-cli-sidecar-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = record_tiny_trace(&dir);
    let sidecar = dir.join("mpeg2-tiny.curves");
    let _ = std::fs::remove_file(&sidecar);

    let profile_args = [
        "profile",
        "--trace",
        trace.to_str().unwrap(),
        "--l2-kb",
        "32",
        "--sets-per-unit",
        "2",
    ];

    // First run: profiles through the L1 filter and writes the sidecar.
    let first = run(&profile_args);
    assert!(
        stdout(&first).contains("wrote curve sidecar"),
        "first invocation must persist the curves"
    );
    let sidecar_bytes = std::fs::read(&sidecar).expect("sidecar written next to the trace");

    // Second run: loads the sidecar (no L1 filter pass), leaves the file
    // untouched, and reports the identical curves and allocation.
    let second = run(&profile_args);
    assert!(
        stdout(&second).contains("reusing persisted curves"),
        "second invocation must reuse the sidecar:\n{}",
        stdout(&second)
    );
    assert!(stdout(&second).contains("L1 filter pass skipped"));
    assert_eq!(
        std::fs::read(&sidecar).unwrap(),
        sidecar_bytes,
        "reuse must not rewrite the sidecar"
    );
    assert_eq!(
        payload(&second),
        payload(&first),
        "persisted curves must reproduce the measured output exactly"
    );

    // `info` reports the sidecar as matching the trace.
    let info = run(&["info", "--trace", trace.to_str().unwrap()]);
    assert!(stdout(&info).contains("matches this trace"));
    assert!(stdout(&info).contains("trace IR version 2"));
    assert!(stdout(&info).contains("segment directory"));
    assert!(stdout(&info).contains("embedded region table"));

    // A corrupted sidecar is re-measured, not trusted and not fatal.
    std::fs::write(&sidecar, b"not a sidecar").unwrap();
    let third = run(&profile_args);
    assert!(
        stdout(&third).contains("re-profiled and rewrote"),
        "corrupt sidecar must be replaced:\n{}",
        stdout(&third)
    );
    assert_eq!(
        std::fs::read(&sidecar).unwrap(),
        sidecar_bytes,
        "re-measuring the same trace must reproduce the same bytes"
    );
    assert_eq!(payload(&third), payload(&first));

    let _ = std::fs::remove_file(&sidecar);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn sweep_shapes_reuses_the_profile_sidecar_and_passes_the_replay_check() {
    let dir = std::env::temp_dir().join("compmem-cli-sweep-shapes-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = record_tiny_trace(&dir);
    let sidecar = dir.join("mpeg2-tiny.curves");
    let _ = std::fs::remove_file(&sidecar);

    // profile and sweep-shapes share the whole-run sidecar: the second
    // command starts from the persisted curves.
    run(&[
        "profile",
        "--trace",
        trace.to_str().unwrap(),
        "--l2-kb",
        "32",
        "--sets-per-unit",
        "2",
    ]);
    let sweep = run(&[
        "sweep-shapes",
        "--trace",
        trace.to_str().unwrap(),
        "--l2-kb",
        "32",
        "--sets-per-unit",
        "2",
        "--check-replay",
        "on",
    ]);
    let text = stdout(&sweep);
    assert!(text.contains("reusing persisted curves"), "{text}");
    assert!(
        text.contains("all 21 shapes match the analytic sweep exactly"),
        "{text}"
    );

    let _ = std::fs::remove_file(&sidecar);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn windowed_profile_reports_phases() {
    let dir = std::env::temp_dir().join("compmem-cli-phases-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = record_tiny_trace(&dir);

    let windowed_sidecar = dir.join("mpeg2-tiny.w400.curves");
    let _ = std::fs::remove_file(&windowed_sidecar);
    let windowed_args = [
        "profile",
        "--trace",
        trace.to_str().unwrap(),
        "--l2-kb",
        "32",
        "--sets-per-unit",
        "2",
        "--windows",
        "400",
        "--phases",
        "0.1",
    ];
    let output = run(&windowed_args);
    let text = stdout(&output);
    assert!(text.contains("windows of 400 L2-bound accesses"), "{text}");
    assert!(text.contains("phase 0: windows"), "{text}");
    assert!(text.contains("allocations re-solved per phase"), "{text}");
    // The windowed pass persists under its own window-keyed path, so it
    // never fights the whole-run sidecar...
    assert!(windowed_sidecar.exists(), "window-keyed sidecar written");
    assert!(!dir.join("mpeg2-tiny.curves").exists());
    // ...and a second windowed invocation reuses it.
    let again = stdout(&run(&windowed_args));
    assert!(again.contains("reusing persisted curves"), "{again}");

    let _ = std::fs::remove_file(&windowed_sidecar);
    let _ = std::fs::remove_file(&trace);
}
