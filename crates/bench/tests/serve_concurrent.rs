//! Concurrent end-to-end test of the `compmem serve` daemon: several
//! client threads hammer one in-process server with a mix of cache-hit
//! and cache-miss requests, and every single response must be
//! byte-identical to the serial one-shot reference — the output of
//! `compmem_bench::cli::dispatch` on the stored trace at the same
//! sidecar state. Afterwards the store must be consistent: the daemon's
//! counters add up and every sidecar file on disk parses and validates
//! against the trace (atomic writes — no torn files).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use compmem_bench::cli;
use compmem_bench::service::DaemonHandler;
use compmem_platform::{
    CurveStore, ServeClient, ServeErrorKind, ServeRequest, ServeResponse, Server,
};
use compmem_trace::{trace_content_hash, EncodedCurves};

/// Runs one one-shot CLI command in-process and returns its stdout bytes.
fn one_shot(verb: &str, args: &[&str]) -> Vec<u8> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    cli::dispatch(verb, &args, &mut out)
        .unwrap_or_else(|e| panic!("one-shot {verb} {args:?} failed: {e}"));
    out
}

/// Sends one command request and returns the daemon's output bytes.
fn daemon_command(client: &mut ServeClient, trace: u64, verb: &str, args: &[&str]) -> Vec<u8> {
    let request = ServeRequest::Command {
        trace,
        verb: verb.to_string(),
        args: args.iter().map(|s| s.to_string()).collect(),
    };
    match client.request(&request).expect("request round-trips") {
        ServeResponse::Output { bytes } => bytes,
        other => panic!("daemon rejected {verb} {args:?}: {other:?}"),
    }
}

fn record_tiny_trace(dir: &Path) -> PathBuf {
    let trace = dir.join("mpeg2-tiny.cmt");
    one_shot(
        "record",
        &[
            "--app",
            "mpeg2",
            "--scale",
            "tiny",
            "--out",
            trace.to_str().unwrap(),
        ],
    );
    trace
}

/// The flags every evaluation in this test shares: the tiny-scale L2.
const TINY_L2: [&str; 6] = ["--l2-kb", "32", "--ways", "4", "--sets-per-unit", "2"];

fn with_tiny_l2<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    TINY_L2
        .iter()
        .copied()
        .chain(extra.iter().copied())
        .collect()
}

#[test]
fn concurrent_clients_get_byte_identical_responses_and_a_consistent_store() {
    let dir = std::env::temp_dir().join(format!("compmem-serve-concurrent-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace_file = record_tiny_trace(&dir);
    let trace_bytes = std::fs::read(&trace_file).unwrap();
    let expected_hash = trace_content_hash(&trace_bytes);

    let store_dir = dir.join("store");
    let store = Arc::new(CurveStore::open(&store_dir).unwrap());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&store), DaemonHandler::new(2)).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    // Upload over the wire; the daemon must store under the content hash.
    let mut client = ServeClient::connect(&addr).unwrap();
    let response = client
        .request(&ServeRequest::PutTrace {
            bytes: trace_bytes.clone(),
        })
        .unwrap();
    assert_eq!(
        response,
        ServeResponse::PutOk {
            hash: expected_hash,
            existed: false
        }
    );
    let stored = store.trace_path(expected_hash);
    let stored_str = stored.to_str().unwrap().to_string();

    // Warm the store through the daemon: both profile shapes run as cache
    // misses on the worker pool and persist their sidecars.
    let warm_whole = daemon_command(&mut client, expected_hash, "profile", &with_tiny_l2(&[]));
    assert!(
        String::from_utf8_lossy(&warm_whole).contains("wrote curve sidecar"),
        "first profile must be a measuring miss"
    );
    daemon_command(
        &mut client,
        expected_hash,
        "profile",
        &with_tiny_l2(&["--windows", "4"]),
    );

    // Serial references at the warm state. The schedule flow reuses the
    // windowed sidecar, so its output is state-independent from here on —
    // asserted by running the reference twice.
    let ref_info = one_shot("info", &["--trace", &stored_str]);
    let ref_profile = one_shot("profile", &{
        let mut a = vec!["--trace", &stored_str];
        a.extend(with_tiny_l2(&[]));
        a
    });
    assert!(
        String::from_utf8_lossy(&ref_profile).contains("reusing persisted curves"),
        "warm-state reference must be analytic"
    );
    let ref_shapes = one_shot("sweep-shapes", &{
        let mut a = vec!["--trace", &stored_str];
        a.extend(with_tiny_l2(&[]));
        a
    });
    let ref_windowed = one_shot("profile", &{
        let mut a = vec!["--trace", &stored_str];
        a.extend(with_tiny_l2(&["--windows", "4"]));
        a
    });
    let ref_schedule = one_shot("replay", &{
        let mut a = vec!["--trace", &stored_str, "--schedule", "phases"];
        a.extend(with_tiny_l2(&["--windows", "4"]));
        a
    });
    let ref_schedule_again = one_shot("replay", &{
        let mut a = vec!["--trace", &stored_str, "--schedule", "phases"];
        a.extend(with_tiny_l2(&["--windows", "4"]));
        a
    });
    assert_eq!(
        ref_schedule, ref_schedule_again,
        "schedule reference must be stable at the warm state"
    );

    // Hammer: four clients, each issuing the full hit mix, one schedule
    // (pool) and one thread-unique windowed profile (a genuine concurrent
    // miss — its sidecar does not exist yet).
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            let ref_info = ref_info.clone();
            let ref_profile = ref_profile.clone();
            let ref_shapes = ref_shapes.clone();
            let ref_windowed = ref_windowed.clone();
            let ref_schedule = ref_schedule.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).unwrap();
                let windows = (11 + i).to_string();
                for _ in 0..2 {
                    let info = daemon_command(&mut client, expected_hash, "info", &[]);
                    assert_eq!(info, ref_info, "info response diverged");
                    let profile =
                        daemon_command(&mut client, expected_hash, "profile", &with_tiny_l2(&[]));
                    assert_eq!(profile, ref_profile, "profile hit response diverged");
                    let shapes = daemon_command(
                        &mut client,
                        expected_hash,
                        "sweep-shapes",
                        &with_tiny_l2(&[]),
                    );
                    assert_eq!(shapes, ref_shapes, "sweep-shapes response diverged");
                    let windowed = daemon_command(
                        &mut client,
                        expected_hash,
                        "profile",
                        &with_tiny_l2(&["--windows", "4"]),
                    );
                    assert_eq!(windowed, ref_windowed, "windowed hit response diverged");
                }
                let schedule = daemon_command(
                    &mut client,
                    expected_hash,
                    "schedule",
                    &with_tiny_l2(&["--windows", "4"]),
                );
                assert_eq!(schedule, ref_schedule, "schedule response diverged");
                // The unique miss: returned for comparison once the serial
                // reference can be computed at the same (empty) state.
                let miss = daemon_command(
                    &mut client,
                    expected_hash,
                    "profile",
                    &with_tiny_l2(&["--windows", &windows]),
                );
                (windows, miss)
            })
        })
        .collect();
    let misses: Vec<(String, Vec<u8>)> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread panicked"))
        .collect();

    // Miss parity: delete each unique sidecar and recompute the one-shot
    // at the same (absent) state; re-measuring is deterministic, so the
    // bytes — including the "wrote curve sidecar" line — must match.
    for (windows, daemon_bytes) in &misses {
        let sidecar = store_dir.join(format!("{expected_hash:016x}.w{windows}.curves"));
        let on_disk = std::fs::read(&sidecar).unwrap_or_else(|e| {
            panic!("miss sidecar {} must exist: {e}", sidecar.display());
        });
        std::fs::remove_file(&sidecar).unwrap();
        let reference = one_shot("profile", &{
            let mut a = vec!["--trace", &stored_str];
            a.extend(with_tiny_l2(&["--windows", windows]));
            a
        });
        assert_eq!(
            daemon_bytes, &reference,
            "concurrent miss (windows {windows}) diverged from the serial reference"
        );
        assert_eq!(
            std::fs::read(&sidecar).unwrap(),
            on_disk,
            "re-measuring must reproduce the daemon's sidecar bytes"
        );
    }

    // Typed errors, never a crash: unknown trace, forbidden flag, unknown
    // verb.
    let bad_hash = expected_hash ^ 1;
    match client
        .request(&ServeRequest::Command {
            trace: bad_hash,
            verb: "info".to_string(),
            args: vec![],
        })
        .unwrap()
    {
        ServeResponse::Error { kind, .. } => assert_eq!(kind, ServeErrorKind::UnknownTrace),
        other => panic!("expected unknown-trace error, got {other:?}"),
    }
    match client
        .request(&ServeRequest::Command {
            trace: expected_hash,
            verb: "profile".to_string(),
            args: vec!["--jobs".to_string(), "8".to_string()],
        })
        .unwrap()
    {
        ServeResponse::Error { kind, .. } => assert_eq!(kind, ServeErrorKind::BadRequest),
        other => panic!("expected bad-request error, got {other:?}"),
    }
    match client
        .request(&ServeRequest::Command {
            trace: expected_hash,
            verb: "record".to_string(),
            args: vec![],
        })
        .unwrap()
    {
        ServeResponse::Error { kind, .. } => assert_eq!(kind, ServeErrorKind::BadRequest),
        other => panic!("expected bad-request error, got {other:?}"),
    }

    // The counters add up: 1 trace, 1 put, 3 typed errors, and exactly
    // the request volume split across hits and misses. Hits: warm state
    // info/profile/sweep-shapes/windowed (4 per round, 2 rounds, 4
    // threads). Misses: 2 warm-ups, 1 schedule + 1 unique windowed
    // profile per thread.
    let stats = match client.request(&ServeRequest::Stats).unwrap() {
        ServeResponse::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    };
    assert_eq!(stats.traces, 1);
    assert_eq!(stats.puts, 1);
    assert_eq!(stats.errors, 3);
    assert_eq!(stats.cache_hits, 4 * 2 * 4);
    assert_eq!(stats.cache_misses, 2 + 4 * 2);

    // Store consistency: a fresh handle sees exactly the one trace, and
    // every sidecar on disk — written concurrently — parses and validates
    // against it (atomic writes guarantee no torn files).
    let reopened = CurveStore::open(&store_dir).unwrap();
    assert_eq!(reopened.trace_hashes(), vec![expected_hash]);
    let mut sidecars = 0;
    for entry in std::fs::read_dir(&store_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "curves") {
            let encoded = EncodedCurves::read_from(&path)
                .unwrap_or_else(|e| panic!("torn sidecar {}: {e}", path.display()));
            encoded
                .validate_for_trace(&trace_bytes)
                .unwrap_or_else(|e| panic!("stale sidecar {}: {e}", path.display()));
            sidecars += 1;
        }
    }
    // whole-run + w4 from the warm-up, one unique windowed per thread
    // (each deleted and rewritten once by the miss-parity check above).
    assert_eq!(sidecars, 2 + 4);

    // Graceful shutdown: the daemon acknowledges, the accept loop exits.
    assert_eq!(
        client.request(&ServeRequest::Shutdown).unwrap(),
        ServeResponse::ShuttingDown
    );
    server_thread
        .join()
        .expect("server thread panicked")
        .expect("server run loop failed");

    let _ = std::fs::remove_dir_all(&dir);
}
