//! Single-pass stack-distance profiling versus shadow-cache
//! re-simulation.
//!
//! The partition optimiser needs every entity's miss count at every
//! lattice point. Three ways to get them from one recorded trace, timed
//! on identical traffic (the small-scale MPEG-2 decode, L1 filter warmed
//! once for all contestants):
//!
//! * `single_pass_curves` — the `StackDistanceProfiler` over the filtered
//!   refill stream, converted to `MissProfiles` (the production path);
//! * `shadow_bank_replay` — one replay of the `ProfilingCache`
//!   organisation, whose shadow bank simulates all lattice points while
//!   riding one pass over the trace (the pre-curve production path);
//! * `per_size_replay` — one `ProfilingCache` replay per lattice point,
//!   each with a single-candidate lattice (the naive "re-simulate per
//!   size" baseline the ISSUE's motivation describes).
//!
//! All three produce identical profiles (asserted before timing). The
//! committed `BENCH_profile.json` baseline records the single-pass versus
//! re-simulation speed-up; regenerate it with
//! `CRITERION_OUTPUT_JSON=BENCH_profile.json cargo bench --bench
//! profile_curves`. (Since the windowed-profiling PR the single-pass
//! path also maintains the aggregate whole-L2 curve — the analytic
//! size×associativity sweep — which costs it roughly a level-bank scan
//! per access; the baseline and the `shadow/single-pass` ratio gate in
//! `scripts/bench_check` reflect that.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem::experiment::Experiment;
use compmem::{CacheSizeLattice, MissProfiles, ProfilingCache};
use compmem_bench::{mpeg2_experiment, Scale};
use compmem_cache::{CurveResolution, OrganizationSpec};
use compmem_platform::{profile_trace, PlatformConfig, PreparedTrace, ReplaySystem};
use compmem_workloads::apps::Application;

/// Replays the trace under a profiling organisation built on `lattice`
/// and extracts the shadow-bank profiles.
fn shadow_replay(
    experiment: &Experiment<impl Fn() -> Application>,
    platform: &PlatformConfig,
    trace: &PreparedTrace,
    lattice: &CacheSizeLattice,
) -> MissProfiles {
    let l2 = OrganizationSpec::Profiling(lattice.clone())
        .build(experiment.config().l2, trace.table())
        .expect("profiling organisation builds");
    let mut system = ReplaySystem::new(platform, l2, trace).expect("replay system builds");
    system.run();
    system
        .into_l2()
        .into_any()
        .downcast::<ProfilingCache>()
        .expect("profiling organisation downcasts")
        .into_profiles()
}

fn bench_profile_curves(c: &mut Criterion) {
    let experiment = mpeg2_experiment(Scale::Small);
    let (_, trace) = experiment
        .record_trace(&experiment.shared_spec())
        .expect("recording the small MPEG-2 run succeeds");
    let platform = experiment.config().platform;
    let geometry = experiment.config().l2.geometry();
    let sets_per_unit = experiment.config().sets_per_unit;
    let lattice = CacheSizeLattice::new(geometry, sets_per_unit);
    let resolution =
        CurveResolution::for_geometry(geometry, sets_per_unit).expect("valid resolution");
    let ways = geometry.ways();

    // Warm the trace's cached L1 filter so every contestant measures its
    // own work, not the shared decode/filter pass a sweep pays once.
    let filtered = trace.filtered_for(&platform).expect("filter pass succeeds");
    let refills: u64 = filtered.runs.iter().map(|r| r.refills.len() as u64).sum();
    println!(
        "trace: {} accesses, {} L2-bound refills, {} lattice points",
        trace.accesses(),
        refills,
        lattice.candidate_units.len()
    );

    // All three sources must agree point for point before we time them.
    let single = profile_trace(&platform, &trace, resolution)
        .expect("profiling succeeds")
        .to_profiles(&lattice, ways)
        .expect("lattice within resolution");
    let shadow = shadow_replay(&experiment, &platform, &trace, &lattice);
    assert_eq!(single, shadow, "single-pass and shadow bank diverge");

    let mut group = c.benchmark_group("profile_curves");
    group.sample_size(10);
    group.bench_function("single_pass_curves", |b| {
        b.iter(|| {
            let profiles = profile_trace(&platform, &trace, resolution)
                .expect("profiling succeeds")
                .to_profiles(&lattice, ways)
                .expect("lattice within resolution");
            black_box(profiles.profiles.len())
        })
    });
    group.bench_function("shadow_bank_replay", |b| {
        b.iter(|| {
            let profiles = shadow_replay(&experiment, &platform, &trace, &lattice);
            black_box(profiles.profiles.len())
        })
    });
    group.bench_function("per_size_replay", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &units in &lattice.candidate_units {
                let point = CacheSizeLattice {
                    sets_per_unit: lattice.sets_per_unit,
                    total_units: lattice.total_units,
                    candidate_units: vec![units],
                };
                let profiles = shadow_replay(&experiment, &platform, &trace, &point);
                total += profiles
                    .profiles
                    .values()
                    .map(|p| p.misses_at(units))
                    .sum::<u64>();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_profile_curves);
criterion_main!(benches);
