//! Cache-hit versus cache-miss request latency of the `compmem serve`
//! daemon, measured end to end through a real client connection: wire
//! round-trip, hit/miss classification, and evaluation.
//!
//! * `hit_profile` — a `profile` request against a warm daemon whose
//!   persisted sidecar passes the full reuse validation: answered
//!   analytically on the connection thread from the store's memoised
//!   trace, no L1 filter pass, no queueing;
//! * `miss_profile` — the same request as a *first touch*: a fresh
//!   daemon on a cold store, upload, decode, L1 filter pass and
//!   profiling on the worker pool. That is the work the sidecar cache
//!   exists to avoid, so the hit/miss gap is the cache's value.
//!
//! Both produce the same profiling payload (asserted before timing; only
//! the sidecar narration line differs). The committed `BENCH_serve.json`
//! baseline records the gap; `scripts/bench_check` gates the
//! `miss_profile/hit_profile` ratio so the analytic path never silently
//! loses its advantage. Regenerate the baseline with
//! `CRITERION_OUTPUT_JSON=BENCH_serve.json cargo bench --bench
//! serve_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;

use compmem_bench::service::DaemonHandler;
use compmem_bench::{mpeg2_experiment, Scale};
use compmem_platform::{CurveStore, ServeClient, ServeRequest, ServeResponse, Server};
use compmem_trace::trace_content_hash;

/// The request every contestant sends: a small-scale whole-run profile.
fn profile_request(trace: u64) -> ServeRequest {
    ServeRequest::Command {
        trace,
        verb: "profile".to_string(),
        args: ["--l2-kb", "64", "--ways", "4", "--sets-per-unit", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    }
}

fn output_bytes(client: &mut ServeClient, request: &ServeRequest) -> Vec<u8> {
    match client.request(request).expect("request round-trips") {
        ServeResponse::Output { bytes } => bytes,
        other => panic!("daemon rejected the profile request: {other:?}"),
    }
}

/// Starts a daemon over `store_dir` and returns a connected client plus
/// the join handle of its accept loop.
fn start_daemon(
    store_dir: &Path,
) -> (
    ServeClient,
    std::thread::JoinHandle<Result<(), compmem_platform::PlatformError>>,
) {
    let store = Arc::new(CurveStore::open(store_dir).expect("store opens"));
    let server = Server::bind("127.0.0.1:0", store, DaemonHandler::new(2)).expect("binds");
    let addr = server.local_addr().expect("bound address").to_string();
    let thread = std::thread::spawn(move || server.run());
    let client = ServeClient::connect(&addr).expect("client connects");
    (client, thread)
}

fn stop_daemon(
    client: &mut ServeClient,
    thread: std::thread::JoinHandle<Result<(), compmem_platform::PlatformError>>,
) {
    client
        .request(&ServeRequest::Shutdown)
        .expect("shutdown round-trips");
    thread.join().expect("server thread").expect("run loop");
}

/// One complete first-touch evaluation: fresh daemon, cold store,
/// upload, profile (a cache miss through the worker pool), shutdown.
fn first_touch(store_dir: &Path, trace_bytes: &[u8], hash: u64) -> Vec<u8> {
    let _ = std::fs::remove_dir_all(store_dir);
    let (mut client, thread) = start_daemon(store_dir);
    client
        .request(&ServeRequest::PutTrace {
            bytes: trace_bytes.to_vec(),
        })
        .expect("put round-trips");
    let bytes = output_bytes(&mut client, &profile_request(hash));
    stop_daemon(&mut client, thread);
    bytes
}

/// The profiling payload: everything after the sidecar narration line.
fn payload(bytes: &[u8]) -> String {
    let text = String::from_utf8_lossy(bytes);
    text.lines().skip(1).collect::<Vec<_>>().join("\n")
}

fn bench_serve_throughput(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("compmem-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let experiment = mpeg2_experiment(Scale::Small);
    let (_, trace) = experiment
        .record_trace(&experiment.shared_spec())
        .expect("recording the small MPEG-2 run succeeds");
    let trace_bytes = trace.trace().bytes().to_vec();
    let hash = trace_content_hash(&trace_bytes);
    let request = profile_request(hash);

    // The warm daemon for the hit contestant: upload once, let the first
    // request persist the sidecar, and check both paths agree on the
    // payload before timing them.
    let hit_store = dir.join("hit-store");
    let (mut hit_client, hit_thread) = start_daemon(&hit_store);
    hit_client
        .request(&ServeRequest::PutTrace {
            bytes: trace_bytes.clone(),
        })
        .expect("put round-trips");
    let warm = output_bytes(&mut hit_client, &request);
    assert!(
        String::from_utf8_lossy(&warm).contains("wrote curve sidecar"),
        "warm-up must persist the sidecar"
    );
    let hit = output_bytes(&mut hit_client, &request);
    assert!(
        String::from_utf8_lossy(&hit).contains("reusing persisted curves"),
        "warm request must be served analytically"
    );
    assert_eq!(
        payload(&hit),
        payload(&warm),
        "hit and miss payloads diverge"
    );
    let miss_store = dir.join("miss-store");
    assert_eq!(
        payload(&first_touch(&miss_store, &trace_bytes, hash)),
        payload(&hit),
        "first-touch and analytic payloads diverge"
    );

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.bench_function("hit_profile", |b| {
        b.iter(|| black_box(output_bytes(&mut hit_client, &request).len()))
    });
    group.bench_function("miss_profile", |b| {
        b.iter(|| black_box(first_touch(&miss_store, &trace_bytes, hash).len()))
    });
    group.finish();

    stop_daemon(&mut hit_client, hit_thread);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
