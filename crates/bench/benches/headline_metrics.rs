//! Bench for the headline metrics of §5 (E5): miss rates, miss-improvement
//! factors and CPI of the shared and partitioned systems, including the
//! larger shared L2 data point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem_bench::{mpeg2_experiment, run_mpeg2_flow, Scale};

fn bench_headline(c: &mut Criterion) {
    let scale = Scale::Small;
    let outcome = run_mpeg2_flow(scale).expect("paper flow succeeds");
    // Sanity of the headline direction: partitioning must not lose misses.
    assert!(outcome.partitioned.report.l2.misses <= outcome.shared.report.l2.misses);

    let mut group = c.benchmark_group("headline_metrics");
    group.sample_size(10);
    group.bench_function("mpeg2_large_shared_l2_run", |b| {
        let experiment = mpeg2_experiment(scale);
        let spec = experiment.shared_spec_with_l2(scale.large_l2());
        b.iter(|| {
            let run = experiment.run(&spec).expect("large shared run succeeds");
            black_box((run.report.l2.misses, run.report.average_cpi()))
        })
    });
    group.bench_function("headline_formatting", |b| {
        b.iter(|| black_box(compmem::report::format_headline(&outcome).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_headline);
criterion_main!(benches);
