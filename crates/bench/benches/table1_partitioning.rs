//! Bench for Table 1 (E1): allocation of L2 sets to the tasks and buffers
//! of the "two JPEG decoders + Canny" application — profiling run plus
//! partition-sizing optimisation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem::optimizer::{solve, OptimizerKind};
use compmem_bench::{jpeg_canny_experiment, Scale};
use compmem_workloads::apps::jpeg_canny_app;

fn bench_table1(c: &mut Criterion) {
    let scale = Scale::Small;
    let experiment = jpeg_canny_experiment(scale);
    // Profiles are measured once; the bench measures the optimisation that
    // produces the table from them, which is the new step the paper adds.
    let (_, profiles) = experiment.run_profiled().expect("profiling run succeeds");
    let app = jpeg_canny_app(&scale.jpeg_canny_params()).expect("application builds");

    let mut group = c.benchmark_group("table1_partitioning");
    group.sample_size(20);
    group.bench_function("profile_and_size_partitions", |b| {
        b.iter(|| {
            let problem = experiment.build_allocation_problem(app.space.table(), profiles.clone());
            let allocation = solve(&problem, OptimizerKind::ExactIlp).expect("feasible");
            black_box(allocation.total_units)
        })
    });
    group.bench_function("full_profiling_run", |b| {
        b.iter(|| {
            let (outcome, profiles) = experiment.run_profiled().expect("profiling run succeeds");
            black_box((outcome.report.l2.misses, profiles.keys().len()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
