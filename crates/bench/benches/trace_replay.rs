//! Replay-versus-live throughput of the trace record/replay pipeline.
//!
//! The point of recording a workload once is that every subsequent
//! organisation run skips functional re-execution. Each timed iteration
//! simulates the same traffic — the small-scale MPEG-2 decode on the
//! shared L2 — either by executing the application live through the
//! Kahn-process-network runtime (`live_mpeg2`) or by replaying the
//! recorded trace through `ReplaySystem` (`replay_mpeg2`); a cold
//! validate-and-decode benchmark (`decode_cold`) isolates the codec cost
//! a sweep pays once. Both simulation
//! paths produce bit-identical L2 snapshots (asserted at start-up), so the
//! ratio of the two medians is the speed-up sweeps enjoy; the committed
//! `BENCH_trace.json` baseline is produced with
//! `CRITERION_OUTPUT_JSON=BENCH_trace.json cargo bench --bench
//! trace_replay`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem::experiment::run_replay;
use compmem_bench::{mpeg2_experiment, Scale};
use compmem_trace::EncodedTrace;

fn bench_trace_replay(c: &mut Criterion) {
    let scale = Scale::Small;
    let experiment = mpeg2_experiment(scale);
    let live_spec = experiment.shared_spec();
    let (live, trace) = experiment
        .record_trace(&live_spec)
        .expect("recording the small MPEG-2 run succeeds");
    let replay_spec = live_spec.clone().replaying(trace.clone());
    let platform = experiment.config().platform;

    // Replay must reproduce the live run exactly before we time anything.
    let replayed = run_replay(&platform, &replay_spec).expect("replay succeeds");
    assert_eq!(live.l2_snapshot, replayed.l2_snapshot);
    assert_eq!(live.report.l1, replayed.report.l1);
    println!(
        "trace: {} accesses, {:.2} bytes/access encoded",
        trace.accesses(),
        trace.summary().bytes_per_access()
    );

    let mut group = c.benchmark_group("trace_replay");
    group.sample_size(10);
    group.bench_function("live_mpeg2", |b| {
        b.iter(|| {
            let outcome = experiment.run(&live_spec).expect("live run succeeds");
            black_box(outcome.report.l2.misses)
        })
    });
    group.bench_function("replay_mpeg2", |b| {
        b.iter(|| {
            let outcome = run_replay(&platform, &replay_spec).expect("replay succeeds");
            black_box(outcome.report.l2.misses)
        })
    });
    group.bench_function("decode_cold", |b| {
        b.iter(|| {
            let cold =
                EncodedTrace::from_bytes(trace.trace().bytes().to_vec()).expect("bytes round-trip");
            black_box(cold.runs().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_replay);
criterion_main!(benches);
