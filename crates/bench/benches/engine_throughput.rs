//! Throughput of the discrete-event engine: simulated memory accesses per
//! second through the unified `Box<dyn CacheModel>` timing path, plus the
//! raw event-scheduler throughput of the KPN functional run.
//!
//! Each timed iteration simulates a fixed, known amount of work, so the
//! reported ns/iteration converts directly into accesses/second:
//!
//! * `shared_l2_4cpu` / `set_partitioned_l2_4cpu`: 4 processors, one task
//!   each, 100 bursts of 16 loads per task — 6 400 data accesses per
//!   iteration through L1, bus, L2 and DRAM timing.
//! * `functional_event_scheduler`: a 4-stage KPN pipeline pushing 2 000
//!   tokens end to end under the min-heap scheduler (no caches), measuring
//!   pure event-loop overhead.
//!
//! The committed `BENCH_engine.json` baseline is produced by running
//! `CRITERION_OUTPUT_JSON=BENCH_engine.json cargo bench --bench
//! engine_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem_cache::{CacheConfig, OrganizationSpec, PartitionKey, PartitionMap};
use compmem_kpn::{FireContext, FireResult, NetworkBuilder, Process, TaskLayout};
use compmem_platform::{
    Burst, BurstOutcome, Op, PlatformConfig, System, TaskMapping, WorkloadDriver,
};
use compmem_trace::{Access, AddressSpace, RegionKind, RegionTable, TaskId};

const PROCESSORS: usize = 4;
const BURSTS_PER_TASK: u32 = 100;
const LOADS_PER_BURST: u32 = 16;

/// One streaming task per processor, each looping loads over its own region.
struct StreamingDriver {
    table: RegionTable,
    remaining: Vec<u32>,
    cursor: Vec<u64>,
}

impl StreamingDriver {
    fn new(table: RegionTable) -> Self {
        StreamingDriver {
            table,
            remaining: vec![BURSTS_PER_TASK; PROCESSORS],
            cursor: vec![0; PROCESSORS],
        }
    }
}

impl WorkloadDriver for StreamingDriver {
    fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
        let t = task.index();
        if self.remaining[t] == 0 {
            return BurstOutcome::Finished;
        }
        self.remaining[t] -= 1;
        let region = compmem_trace::RegionId::new(t as u32);
        let base = self.table.region(region).base;
        let mut ops = Vec::with_capacity(2 * LOADS_PER_BURST as usize);
        for _ in 0..LOADS_PER_BURST {
            let addr = base.offset((self.cursor[t] % 512) * 64);
            self.cursor[t] += 1;
            ops.push(Op::Compute(2));
            ops.push(Op::Mem(Access::load(addr, 4, task, region)));
        }
        BurstOutcome::Ready(Burst::new(ops))
    }
}

fn region_table() -> RegionTable {
    let mut table = RegionTable::new();
    for t in 0..PROCESSORS as u32 {
        table
            .insert(
                format!("t{t}.data"),
                RegionKind::TaskData {
                    task: TaskId::new(t),
                },
                64 * 1024,
            )
            .unwrap();
    }
    table
}

fn run_once(spec: &OrganizationSpec, l2: CacheConfig, table: &RegionTable) -> u64 {
    let platform = PlatformConfig::default().processors(PROCESSORS);
    let tasks: Vec<TaskId> = (0..PROCESSORS as u32).map(TaskId::new).collect();
    let mapping = TaskMapping::round_robin(&tasks, PROCESSORS);
    let model = spec.build(l2, table).expect("spec builds");
    let mut system = System::new(platform, model, mapping).expect("valid system");
    let mut driver = StreamingDriver::new(table.clone());
    let report = system.run(&mut driver).expect("run completes");
    report.l2.accesses
}

/// A pipeline stage that forwards tokens with a small compute cost.
struct Stage;

impl Process for Stage {
    fn name(&self) -> &str {
        "stage"
    }
    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 1 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.output_count() > 0 && ctx.space(0) < 1 {
            return FireResult::Blocked;
        }
        let v = ctx.pop(0);
        ctx.compute(4);
        if ctx.output_count() > 0 {
            ctx.push(0, v + 1);
        }
        FireResult::Fired
    }
}

/// A source pushing `count` tokens.
struct Src {
    next: i32,
    count: i32,
}

impl Process for Src {
    fn name(&self) -> &str {
        "src"
    }
    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if self.next == self.count {
            return FireResult::Finished;
        }
        if ctx.space(0) < 1 {
            return FireResult::Blocked;
        }
        ctx.compute(2);
        ctx.push(0, self.next);
        self.next += 1;
        FireResult::Fired
    }
}

fn functional_pipeline(tokens: i32) -> compmem_kpn::Network {
    let mut space = AddressSpace::new();
    let mut b = NetworkBuilder::new();
    let t0 = b.next_task_id();
    let src = b.add_process(
        Box::new(Src {
            next: 0,
            count: tokens,
        }),
        TaskLayout::with_code_size(&mut space, "src", t0, 1024).unwrap(),
    );
    let mut prev_task = src;
    for i in 0..3 {
        let t = b.next_task_id();
        let stage = b.add_process(
            Box::new(Stage),
            TaskLayout::with_code_size(&mut space, &format!("stage{i}"), t, 1024).unwrap(),
        );
        let f = b.add_fifo(&mut space, &format!("f{i}"), 8).unwrap();
        b.connect_output(prev_task, 0, f).unwrap();
        b.connect_input(stage, 0, f).unwrap();
        prev_task = stage;
    }
    b.build().unwrap()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let table = region_table();
    let l2 = CacheConfig::with_size_bytes(64 * 1024, 4).unwrap();
    let map = PartitionMap::pack(
        l2.geometry(),
        &(0..PROCESSORS as u32)
            .map(|t| (PartitionKey::Task(TaskId::new(t)), 64))
            .collect::<Vec<_>>(),
    )
    .unwrap();

    // Sanity: both organisations see the same number of L2 accesses.
    let shared_accesses = run_once(&OrganizationSpec::Shared, l2, &table);
    let part_accesses = run_once(&OrganizationSpec::SetPartitioned(map.clone()), l2, &table);
    assert_eq!(shared_accesses, part_accesses);
    assert!(shared_accesses > 0);

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(20);
    group.bench_function("shared_l2_4cpu", |b| {
        b.iter(|| black_box(run_once(&OrganizationSpec::Shared, l2, &table)))
    });
    let part_spec = OrganizationSpec::SetPartitioned(map);
    group.bench_function("set_partitioned_l2_4cpu", |b| {
        b.iter(|| black_box(run_once(&part_spec, l2, &table)))
    });
    group.bench_function("functional_event_scheduler", |b| {
        b.iter(|| {
            let mut network = functional_pipeline(2_000);
            let finished = network.run_functional(u64::MAX).expect("no deadlock");
            assert!(finished);
            black_box(network.all_finished())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
