//! Bench for Figure 3 (E4): the expected-versus-simulated comparison that
//! demonstrates compositionality.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem::compositionality::CompositionalityReport;
use compmem_bench::{run_jpeg_canny_flow, Scale};

fn bench_figure3(c: &mut Criterion) {
    let scale = Scale::Small;
    let outcome = run_jpeg_canny_flow(scale).expect("paper flow succeeds");
    assert!(
        outcome.compositionality.max_relative_difference() < 0.05,
        "the reproduced system must be compositional"
    );

    let mut group = c.benchmark_group("figure3_compositionality");
    group.sample_size(30);
    group.bench_function("expected_vs_simulated_comparison", |b| {
        b.iter(|| {
            let report = CompositionalityReport::compare(
                &outcome.profiles,
                &outcome.allocation,
                &outcome.partitioned.misses_by_key(),
            );
            black_box(report.max_relative_difference())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure3);
criterion_main!(benches);
