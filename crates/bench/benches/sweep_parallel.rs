//! Scaling of the parallel sweep executor and the per-key replay lanes.
//!
//! Two parallel paths ride on the recorded small-scale MPEG-2 trace. The
//! *sweep* pair times the same three-organisation replay batch on the
//! work-stealing pool with one worker (`serial_sweep`) and four workers
//! (`jobs4_sweep`); their ratio is the wall-clock speed-up `compmem sweep
//! --jobs 4` enjoys on the measuring machine. The *lane* trio times the
//! set-partitioned replay split into independent per-partition-key lanes
//! merged back into one report (`lanes1`/`lanes2`/`lanes4` worker
//! threads); intra-scenario scaling that a batch of whole scenarios
//! cannot expose. `composed_sweep` stacks the two layers (four batch
//! workers, each eligible row on up to two lanes) and the
//! `profile_serial`/`profile_lanes4` pair times the lane-parallel
//! stack-distance pass against the serial profiler. Byte-identical
//! parity of every parallel path against its serial reference is
//! asserted before any timing. The committed
//! `BENCH_sweep.json` baseline is produced with
//! `CRITERION_OUTPUT_JSON=BENCH_sweep.json cargo bench --bench
//! sweep_parallel` (the committed numbers come from a single-CPU
//! container, so its serial/parallel ratios sit near 1; the
//! `scripts/bench_check` ratio gate only fires if parallelism *loses*
//! ground against the same-run serial reference).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem::executor::run_batch;
use compmem::experiment::{run_replay, ReplayParallelism, ScenarioSpec};
use compmem_bench::{mpeg2_experiment, Scale};
use compmem_cache::{
    CurveResolution, OrganizationSpec, PartitionKey, PartitionMap, PartitionSchedule, WayAllocation,
};
use compmem_platform::{profile_trace, profile_trace_lanes, replay_lanes};

fn bench_sweep_parallel(c: &mut Criterion) {
    let scale = Scale::Small;
    let experiment = mpeg2_experiment(scale);
    let live_spec = experiment.shared_spec();
    let (_live, trace) = experiment
        .record_trace(&live_spec)
        .expect("recording the small MPEG-2 run succeeds");
    let platform = experiment.config().platform;
    let l2 = experiment.config().l2;
    let keys = PartitionKey::distinct_keys(trace.table());
    let set_map = PartitionMap::equal_split(l2.geometry(), &keys)
        .expect("the small L2 splits over the trace's partition keys");
    let specs = vec![
        ScenarioSpec::replay(l2, OrganizationSpec::Shared, trace.clone()),
        ScenarioSpec::replay(
            l2,
            OrganizationSpec::SetPartitioned(set_map.clone()),
            trace.clone(),
        ),
        ScenarioSpec::replay(
            l2,
            OrganizationSpec::WayPartitioned(WayAllocation::equal_split(l2.geometry(), &keys)),
            trace.clone(),
        ),
    ];

    // The batch must be byte-identical whatever the worker count before we
    // time anything.
    let serial = run_batch(&specs, 1, |_, spec| run_replay(&platform, spec));
    let parallel = run_batch(&specs, 4, |_, spec| run_replay(&platform, spec));
    for (a, b) in serial.iter().zip(&parallel) {
        let a = a.as_ref().expect("replay succeeds");
        let b = b.as_ref().expect("replay succeeds");
        assert_eq!(a.report.l1, b.report.l1);
        assert_eq!(a.report.l2, b.report.l2);
        assert_eq!(a.l2_snapshot, b.l2_snapshot);
    }

    // The merged lane totals must match the one-cache serial replay of the
    // same set-partitioned organisation.
    let schedule = PartitionSchedule::single(OrganizationSpec::SetPartitioned(set_map));
    let reference = &serial[1].as_ref().expect("replay succeeds").report;
    let lanes = replay_lanes(&platform, l2, &schedule, &trace, 4).expect("lane replay succeeds");
    assert!(lanes.lanes > 1, "the trace must split into several lanes");
    assert_eq!(lanes.l1, reference.l1);
    assert_eq!(lanes.l2, reference.l2);
    assert_eq!(lanes.dram_accesses, reference.dram_accesses);
    assert_eq!(lanes.dram_writebacks, reference.dram_writebacks);
    println!(
        "trace: {} accesses, {} partition lanes over {} keys",
        trace.accesses(),
        lanes.lanes,
        keys.len()
    );

    // The lane-parallel profiling pass must reproduce the serial curves
    // point for point before its timing means anything.
    let resolution = CurveResolution::for_geometry(l2.geometry(), 16)
        .expect("the small L2 supports the paper's 16-set resolution");
    let curves_serial =
        profile_trace(&platform, &trace, resolution).expect("serial profiling succeeds");
    let curves_lanes =
        profile_trace_lanes(&platform, &trace, resolution, 4).expect("lane profiling succeeds");
    assert_eq!(
        curves_serial, curves_lanes,
        "lane-parallel profiling must be point-for-point identical to the serial pass"
    );

    // Composed batch x lane sweep: four batch workers, each eligible row
    // split over up to two lanes. Cache-side counters must match the
    // serial batch exactly (timing is not reconstructed by lanes).
    let composed_specs: Vec<ScenarioSpec> = specs
        .iter()
        .map(|spec| spec.clone().with_parallelism(ReplayParallelism::lanes(2)))
        .collect();
    let composed = run_batch(&composed_specs, 4, |_, spec| run_replay(&platform, spec));
    for (a, b) in serial.iter().zip(&composed) {
        let a = a.as_ref().expect("replay succeeds");
        let b = b.as_ref().expect("replay succeeds");
        assert_eq!(a.report.l1, b.report.l1);
        assert_eq!(a.report.l2, b.report.l2);
        assert_eq!(a.report.dram_accesses, b.report.dram_accesses);
        assert_eq!(a.by_key, b.by_key);
    }

    let mut group = c.benchmark_group("sweep_parallel");
    group.sample_size(10);
    group.bench_function("serial_sweep", |b| {
        b.iter(|| {
            let outcomes = run_batch(&specs, 1, |_, spec| run_replay(&platform, spec));
            black_box(outcomes.len())
        })
    });
    group.bench_function("jobs4_sweep", |b| {
        b.iter(|| {
            let outcomes = run_batch(&specs, 4, |_, spec| run_replay(&platform, spec));
            black_box(outcomes.len())
        })
    });
    for jobs in [1usize, 2, 4] {
        group.bench_function(format!("lanes{jobs}").as_str(), |b| {
            b.iter(|| {
                let report = replay_lanes(&platform, l2, &schedule, &trace, jobs)
                    .expect("lane replay succeeds");
                black_box(report.l2.misses)
            })
        });
    }
    group.bench_function("composed_sweep", |b| {
        b.iter(|| {
            let outcomes = run_batch(&composed_specs, 4, |_, spec| run_replay(&platform, spec));
            black_box(outcomes.len())
        })
    });
    group.bench_function("profile_serial", |b| {
        b.iter(|| {
            let curves = profile_trace(&platform, &trace, resolution).expect("profiling succeeds");
            black_box(curves.accesses())
        })
    });
    group.bench_function("profile_lanes4", |b| {
        b.iter(|| {
            let curves = profile_trace_lanes(&platform, &trace, resolution, 4)
                .expect("lane profiling succeeds");
            black_box(curves.accesses())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_parallel);
criterion_main!(benches);
