//! Bench for Figure 2 (E3): per-entity misses of the shared versus the best
//! partitioned cache — the two full-system simulation runs the figure is
//! built from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem::optimizer::{solve, OptimizerKind};
use compmem_bench::{jpeg_canny_experiment, mpeg2_experiment, Scale};

fn bench_figure2(c: &mut Criterion) {
    let scale = Scale::Small;
    let mut group = c.benchmark_group("figure2_shared_vs_partitioned");
    group.sample_size(10);

    let experiment = jpeg_canny_experiment(scale);
    let (_, profiles) = experiment.run_profiled().expect("profiling run succeeds");
    let app = compmem_workloads::apps::jpeg_canny_app(&scale.jpeg_canny_params()).expect("builds");
    let problem = experiment.build_allocation_problem(app.space.table(), profiles);
    let allocation = solve(&problem, OptimizerKind::ExactIlp).expect("feasible");
    let partitioned_spec = experiment
        .partitioned_spec(&allocation)
        .expect("allocation fits the cache");

    group.bench_function("jpeg_canny_partitioned_run", |b| {
        b.iter(|| {
            let outcome = experiment
                .run(&partitioned_spec)
                .expect("partitioned run succeeds");
            black_box(outcome.report.l2.misses)
        })
    });

    let mpeg2 = mpeg2_experiment(scale);
    group.bench_function("mpeg2_shared_run", |b| {
        b.iter(|| {
            let (outcome, _) = mpeg2.run_profiled().expect("shared run succeeds");
            black_box(outcome.report.l2.misses)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure2);
criterion_main!(benches);
