//! Cost of closing the control loop: online repartitioning vs a plain
//! static replay of the same traffic.
//!
//! The same recorded small-scale MPEG-2 trace (L1 filter warmed once) is
//! replayed four ways:
//!
//! * `static_replay` — one equal-split map, no controller: the in-run
//!   reference every controlled case is gated against;
//! * `greedy_replay` — the online `Greedy` policy re-solving the exact
//!   allocation on every closed profiling window and switching through
//!   the push path (inline windowed profiling + per-window ILP: the most
//!   expensive causal controller);
//! * `hysteresis_replay` — `Hysteresis` with the phase detector gating
//!   the re-solve, a fresh policy per iteration (the detector carries
//!   state across windows, not across runs);
//! * `oracle_replay` — the offline plan (computed once, outside the
//!   timing loop) replayed through its pre-installed schedule.
//!
//! A second pair measures the same quotient on workload-zoo traffic:
//! `static_zoo_mix` vs `hysteresis_zoo_mix` replay a generated
//! three-task mix (phased hot/scan alternation beside a Zipf task and a
//! streaming scan) whose phase transitions actually fire the hysteresis
//! detector — the sanity pass asserts at least one switch, so the
//! controlled case pays real invalidation traffic, not a no-op loop.
//!
//! The committed `BENCH_controller.json` baseline records all six;
//! `scripts/bench_check` gates the same-run ratios static/greedy,
//! static/oracle and static-zoo/hysteresis-zoo, which fire only if the
//! control loop loses ground relative to the uncontrolled replay —
//! machine speed cancels out of the quotients. Regenerate with
//! `CRITERION_OUTPUT_JSON=BENCH_controller.json cargo bench --bench
//! controller_regret`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use compmem::controller::{
    compete, replay_controlled, ControllerConfig, ControllerPolicy, Greedy, Hysteresis, Oracle,
};
use compmem::experiment::{run_replay, ScenarioSpec};
use compmem_bench::{mpeg2_experiment, Scale};
use compmem_cache::{
    CacheConfig, CacheSizeLattice, CurveResolution, OrganizationSpec, PartitionKey, PartitionMap,
};
use compmem_platform::{PlatformConfig, PreparedTrace};
use compmem_trace::gen::{generate, GenKind, GenSpec, GenTask};

const SETS_PER_UNIT: u32 = 4; // Scale::Small's allocation-unit granule
const WINDOWS: u64 = 6;
const PHASE_THRESHOLD: f64 = 0.1;
const SWITCH_MARGIN: f64 = 1.0;

// The zoo mix that drives the hysteresis detector: a phased task whose
// 24 KB hot set overflows the 16 KB private L1 (so the phase change is
// visible at L2) next to a 48 KB Zipf task and a 128 KB streaming scan.
// Three contenders matter: with two, the power-of-two lattice solves to
// the equal split and the controller never has a better map to switch to.
const ZOO_SEED: u64 = 7;
const ZOO_ACCESSES: u64 = 20_000;
const ZOO_WINDOW_CYCLES: u64 = 16_000;
const ZOO_PHASE_THRESHOLD: f64 = 0.05;

fn zoo_mix_spec() -> GenSpec {
    GenSpec {
        seed: ZOO_SEED,
        cycles_per_access: compmem_trace::DEFAULT_CYCLES_PER_ACCESS,
        tasks: vec![
            GenTask {
                kind: GenKind::Phased {
                    hot_bytes: 24 * 1024,
                    scan_bytes: 128 * 1024,
                    phase_accesses: 2_048,
                },
                accesses: ZOO_ACCESSES,
            },
            GenTask {
                kind: GenKind::Zipf {
                    working_set_bytes: 48 * 1024,
                },
                accesses: ZOO_ACCESSES,
            },
            GenTask {
                kind: GenKind::Scan {
                    footprint_bytes: 128 * 1024,
                },
                accesses: ZOO_ACCESSES,
            },
        ],
    }
}

fn bench_controller_regret(c: &mut Criterion) {
    let experiment = mpeg2_experiment(Scale::Small);
    let (live, trace) = experiment
        .record_trace(&experiment.shared_spec())
        .expect("recording the small MPEG-2 run succeeds");
    let l2 = experiment.config().l2;
    let platform = experiment.config().platform;
    let lattice = CacheSizeLattice::new(l2.geometry(), SETS_PER_UNIT);
    let resolution = CurveResolution::for_geometry(l2.geometry(), SETS_PER_UNIT)
        .expect("resolution covers the geometry");
    let window_cycles = (live.report.makespan_cycles / WINDOWS).max(1);
    let config =
        ControllerConfig::cycles(window_cycles, resolution).expect("window length is positive");

    // Warm the trace's cached L1 filter so every contestant measures the
    // control loop, not the shared filter pass a sweep pays once.
    trace.filtered_for(&platform).expect("filter pass succeeds");

    let keys = PartitionKey::distinct_keys(trace.table());
    let map = PartitionMap::equal_split(l2.geometry(), &keys).expect("equal split fits");
    let static_spec = ScenarioSpec::replay(
        l2,
        OrganizationSpec::SetPartitioned(map),
        Arc::clone(&trace),
    );

    let mut oracle = Oracle::plan(&platform, l2, &lattice, &trace, PHASE_THRESHOLD, &config)
        .expect("offline planning succeeds");

    // Sanity before timing: the competition reconciles exactly — the
    // oracle's regret is zero, every cost is misses plus flush traffic,
    // and greedy actually exercises the switch path.
    {
        let mut greedy = Greedy;
        let mut hysteresis = Hysteresis::new(PHASE_THRESHOLD, SWITCH_MARGIN);
        let mut policies: Vec<&mut dyn ControllerPolicy> =
            vec![&mut greedy, &mut hysteresis, &mut oracle];
        let (outcomes, report) = compete(&platform, l2, &lattice, &trace, &mut policies, &config)
            .expect("competition succeeds");
        assert_eq!(report.baseline, "oracle");
        for (outcome, entry) in outcomes.iter().zip(&report.entries) {
            assert_eq!(entry.cost, outcome.cost());
            assert_eq!(
                entry.cost,
                outcome.outcome.report.l2.misses + outcome.total_flush().written_back
            );
            assert_eq!(entry.regret, entry.cost as i64 - report.oracle_cost as i64);
        }
        let oracle_row = report
            .entries
            .iter()
            .find(|e| e.policy == "oracle")
            .unwrap();
        assert_eq!(
            oracle_row.regret, 0,
            "oracle regret is zero by construction"
        );
        let greedy_row = report
            .entries
            .iter()
            .find(|e| e.policy == "greedy")
            .unwrap();
        assert!(greedy_row.switches >= 2, "greedy must actually repartition");
        println!(
            "trace: {} accesses, {} windows of {} cycles\n{}",
            trace.accesses(),
            WINDOWS,
            window_cycles,
            report.table()
        );
    }

    // The workload-zoo contender: same static-vs-controlled quotient on a
    // generated mix whose phase transitions actually fire the detector.
    let zoo_l2 = CacheConfig::with_size_bytes(64 * 1024, 4).expect("64 KB / 4-way L2 is valid");
    let zoo_platform = PlatformConfig::default();
    let zoo_trace = Arc::new(PreparedTrace::from(
        generate(&zoo_mix_spec()).expect("generating the zoo mix succeeds"),
    ));
    let zoo_lattice = CacheSizeLattice::new(zoo_l2.geometry(), SETS_PER_UNIT);
    let zoo_resolution = CurveResolution::for_geometry(zoo_l2.geometry(), SETS_PER_UNIT)
        .expect("resolution covers the zoo geometry");
    let zoo_config = ControllerConfig::cycles(ZOO_WINDOW_CYCLES, zoo_resolution)
        .expect("zoo window length is positive");
    zoo_trace
        .filtered_for(&zoo_platform)
        .expect("zoo filter pass succeeds");
    let zoo_keys = PartitionKey::distinct_keys(zoo_trace.table());
    let zoo_map =
        PartitionMap::equal_split(zoo_l2.geometry(), &zoo_keys).expect("zoo equal split fits");
    let zoo_static_spec = ScenarioSpec::replay(
        zoo_l2,
        OrganizationSpec::SetPartitioned(zoo_map),
        Arc::clone(&zoo_trace),
    );

    // Sanity before timing: the generated mix must actually drive the
    // hysteresis policy through the switch path, and switching must beat
    // holding the equal split on the same traffic.
    {
        let mut policy = Hysteresis::new(ZOO_PHASE_THRESHOLD, SWITCH_MARGIN);
        let controlled = replay_controlled(
            &zoo_platform,
            zoo_l2,
            &zoo_lattice,
            &zoo_trace,
            &mut policy,
            &zoo_config,
        )
        .expect("zoo hysteresis replay succeeds");
        assert!(
            controlled.switches() >= 1,
            "the zoo mix must fire at least one hysteresis switch"
        );
        let held = run_replay(&zoo_platform, &zoo_static_spec).expect("zoo static replay succeeds");
        assert!(
            controlled.outcome.report.l2.misses < held.report.l2.misses,
            "repartitioning must beat holding the equal split on the zoo mix"
        );
        println!(
            "zoo mix: {} accesses, {} switches fired, {} controlled vs {} static L2 misses",
            zoo_trace.accesses(),
            controlled.switches(),
            controlled.outcome.report.l2.misses,
            held.report.l2.misses
        );
    }

    let mut group = c.benchmark_group("controller_regret");
    group.sample_size(10);
    group.bench_function("static_replay", |b| {
        b.iter(|| {
            let outcome = run_replay(&platform, &static_spec).expect("static replay succeeds");
            black_box(outcome.report.l2.misses)
        })
    });
    group.bench_function("greedy_replay", |b| {
        b.iter(|| {
            let outcome = replay_controlled(&platform, l2, &lattice, &trace, &mut Greedy, &config)
                .expect("greedy replay succeeds");
            black_box(outcome.cost())
        })
    });
    group.bench_function("hysteresis_replay", |b| {
        b.iter(|| {
            let mut policy = Hysteresis::new(PHASE_THRESHOLD, SWITCH_MARGIN);
            let outcome = replay_controlled(&platform, l2, &lattice, &trace, &mut policy, &config)
                .expect("hysteresis replay succeeds");
            black_box(outcome.cost())
        })
    });
    group.bench_function("oracle_replay", |b| {
        b.iter(|| {
            let outcome = replay_controlled(&platform, l2, &lattice, &trace, &mut oracle, &config)
                .expect("oracle replay succeeds");
            black_box(outcome.cost())
        })
    });
    group.bench_function("static_zoo_mix", |b| {
        b.iter(|| {
            let outcome =
                run_replay(&zoo_platform, &zoo_static_spec).expect("zoo static replay succeeds");
            black_box(outcome.report.l2.misses)
        })
    });
    group.bench_function("hysteresis_zoo_mix", |b| {
        b.iter(|| {
            let mut policy = Hysteresis::new(ZOO_PHASE_THRESHOLD, SWITCH_MARGIN);
            let outcome = replay_controlled(
                &zoo_platform,
                zoo_l2,
                &zoo_lattice,
                &zoo_trace,
                &mut policy,
                &zoo_config,
            )
            .expect("zoo hysteresis replay succeeds");
            black_box(outcome.cost())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_controller_regret);
criterion_main!(benches);
