//! Cost of executing partitioning as a time-varying policy.
//!
//! The same recorded small-scale MPEG-2 trace is replayed twice on
//! identical traffic (L1 filter warmed once):
//!
//! * `static_replay` — one equal-split set-partitioned map for the whole
//!   run (the pre-schedule behaviour);
//! * `scheduled_replay` — an 8-switch `PartitionSchedule` alternating
//!   between two layouts whose every partition moves, so each switch
//!   flushes the resident lines and re-issues the L2 accesses refill by
//!   refill (the schedule-pending slow path) — a worst-case bound on the
//!   engine overhead of dynamic repartitioning.
//!
//! The committed `BENCH_repartition.json` baseline records the pair;
//! `scripts/bench_check` gates their same-run ratio (static/scheduled),
//! which fires only if the scheduled path loses ground relative to the
//! static one — machine speed cancels out of the quotient. Regenerate
//! with `CRITERION_OUTPUT_JSON=BENCH_repartition.json cargo bench
//! --bench repartition_overhead`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use compmem::experiment::{run_replay, ScenarioSpec};
use compmem_bench::{mpeg2_experiment, Scale};
use compmem_cache::{OrganizationSpec, PartitionKey, PartitionMap, PartitionSchedule};

const SWITCHES: u64 = 8;

fn bench_repartition_overhead(c: &mut Criterion) {
    let experiment = mpeg2_experiment(Scale::Small);
    let (live, trace) = experiment
        .record_trace(&experiment.shared_spec())
        .expect("recording the small MPEG-2 run succeeds");
    let l2 = experiment.config().l2;
    let platform = experiment.config().platform;
    let keys = PartitionKey::distinct_keys(trace.table());
    let map_a = PartitionMap::equal_split(l2.geometry(), &keys).expect("equal split fits");
    let reversed: Vec<PartitionKey> = keys.iter().rev().copied().collect();
    let map_b = PartitionMap::equal_split(l2.geometry(), &reversed).expect("equal split fits");

    // Evenly spaced switches across the recorded run, alternating the
    // two (fully disjoint) layouts.
    let makespan = live.report.makespan_cycles;
    let mut steps = vec![(0, OrganizationSpec::SetPartitioned(map_a.clone()))];
    for i in 1..=SWITCHES {
        let map = if i % 2 == 0 { &map_a } else { &map_b };
        steps.push((
            i * makespan / (SWITCHES + 1),
            OrganizationSpec::SetPartitioned(map.clone()),
        ));
    }
    let schedule = PartitionSchedule::new(steps).expect("steps are ordered");

    // Warm the trace's cached L1 filter so both contestants measure the
    // replay path, not the shared filter pass a sweep pays once.
    trace.filtered_for(&platform).expect("filter pass succeeds");

    let static_spec = ScenarioSpec::replay(
        l2,
        OrganizationSpec::SetPartitioned(map_a),
        Arc::clone(&trace),
    );
    let scheduled_spec = ScenarioSpec::scheduled_replay(l2, schedule, Arc::clone(&trace));

    // Sanity before timing: every switch fires and flushes lines.
    let scheduled = run_replay(&platform, &scheduled_spec).expect("scheduled replay succeeds");
    assert_eq!(scheduled.report.repartitions.len(), SWITCHES as usize);
    assert!(scheduled
        .report
        .repartitions
        .iter()
        .all(|r| r.flush.invalidated > 0));
    let static_outcome = run_replay(&platform, &static_spec).expect("static replay succeeds");
    println!(
        "trace: {} accesses; static {} L2 misses, scheduled {} ({} switches, {} lines flushed)",
        trace.accesses(),
        static_outcome.report.l2.misses,
        scheduled.report.l2.misses,
        SWITCHES,
        scheduled
            .report
            .repartitions
            .iter()
            .map(|r| r.flush.invalidated)
            .sum::<u64>()
    );

    let mut group = c.benchmark_group("repartition_overhead");
    group.sample_size(10);
    group.bench_function("static_replay", |b| {
        b.iter(|| {
            let outcome = run_replay(&platform, &static_spec).expect("static replay succeeds");
            black_box(outcome.report.l2.misses)
        })
    });
    group.bench_function("scheduled_replay", |b| {
        b.iter(|| {
            let outcome =
                run_replay(&platform, &scheduled_spec).expect("scheduled replay succeeds");
            black_box(outcome.report.l2.misses)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_repartition_overhead);
criterion_main!(benches);
