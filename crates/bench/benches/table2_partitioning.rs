//! Bench for Table 2 (E2): allocation of L2 sets to the tasks and buffers of
//! the MPEG-2 decoder.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem::optimizer::{solve, OptimizerKind};
use compmem_bench::{mpeg2_experiment, Scale};
use compmem_workloads::apps::mpeg2_app;

fn bench_table2(c: &mut Criterion) {
    let scale = Scale::Small;
    let experiment = mpeg2_experiment(scale);
    let (_, profiles) = experiment.run_profiled().expect("profiling run succeeds");
    let app = mpeg2_app(&scale.mpeg2_params()).expect("application builds");

    let mut group = c.benchmark_group("table2_partitioning");
    group.sample_size(20);
    group.bench_function("profile_and_size_partitions", |b| {
        b.iter(|| {
            let problem = experiment.build_allocation_problem(app.space.table(), profiles.clone());
            let allocation = solve(&problem, OptimizerKind::ExactIlp).expect("feasible");
            black_box(allocation.total_units)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
