//! Benches for the ablation experiments E6–E8 of DESIGN.md: way
//! partitioning versus set partitioning, FIFO partition sizing, and the
//! optimiser comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use compmem::optimizer::{solve, OptimizerKind};
use compmem_bench::{jpeg_canny_experiment, Scale};
use compmem_workloads::apps::jpeg_canny_app;

fn bench_ablations(c: &mut Criterion) {
    let scale = Scale::Small;
    let experiment = jpeg_canny_experiment(scale);
    let (_, profiles) = experiment.run_profiled().expect("profiling run succeeds");
    let app = jpeg_canny_app(&scale.jpeg_canny_params()).expect("application builds");
    let problem = experiment.build_allocation_problem(app.space.table(), profiles);

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // E6: the column-caching baseline run (the spec is built once; the
    // bench measures the run through the shared Box<dyn CacheModel> path).
    let way_spec = experiment.way_partitioned_spec();
    group.bench_function("way_partitioned_run", |b| {
        b.iter(|| {
            let run = experiment
                .run(&way_spec)
                .expect("way-partitioned run succeeds");
            black_box(run.report.l2.misses)
        })
    });

    // E8: solver comparison on the measured profiles.
    group.bench_function("optimizer_exact_vs_greedy_vs_equal", |b| {
        b.iter(|| {
            let exact = solve(&problem, OptimizerKind::ExactIlp).expect("feasible");
            let greedy = solve(&problem, OptimizerKind::Greedy).expect("feasible");
            let equal = solve(&problem, OptimizerKind::EqualSplit).expect("feasible");
            assert!(exact.predicted_misses <= greedy.predicted_misses);
            assert!(exact.predicted_misses <= equal.predicted_misses);
            black_box((
                exact.predicted_misses,
                greedy.predicted_misses,
                equal.predicted_misses,
            ))
        })
    });

    // E7: FIFO sizing — evaluate the profiles at one unit versus the pinned
    // size for every FIFO entity.
    group.bench_function("fifo_sizing_lookup", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for entity in &problem.entities {
                if let Some(profile) = problem.profiles.profile(entity.key) {
                    let pinned = *entity.candidates.first().unwrap_or(&1);
                    total +=
                        profile.misses_at(1) - profile.misses_at(pinned).min(profile.misses_at(1));
                }
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
