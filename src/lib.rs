//! Umbrella crate of the `compmem` reproduction suite.
//!
//! This crate only re-exports the workspace members so that the runnable
//! examples in `examples/` and the cross-crate integration tests in `tests/`
//! have a single dependency.
//!
//! # Crate map
//!
//! The workspace is layered bottom-up; each crate depends only on the ones
//! above it in this list:
//!
//! * [`compmem_trace`] — addresses, line/region arithmetic, the region
//!   table, access records and synthetic stream generators. Pure data; no
//!   simulation.
//! * [`compmem_cache`] — the cache substrate. The four L2 organisations of
//!   the study (shared, set-partitioned, way-partitioned, profiling) all
//!   implement the **object-safe `CacheModel` trait**, and
//!   `OrganizationSpec` builds any of them as a `Box<dyn CacheModel>` from
//!   plain data. Per-key statistics and uniform `CacheSnapshot`s live here
//!   too, as do the miss-vs-size profiles (`MissProfiles`) measured by the
//!   profiling organisation.
//! * [`compmem_platform`] — the CAKE-like multiprocessor simulator. A
//!   discrete-event `EventQueue` (min-heap of `(ready_cycle, actor)`)
//!   drives the run loop; processors execute workload bursts against one
//!   timing path (private L1s → shared bus → `Box<dyn CacheModel>` L2 →
//!   DRAM), park when their tasks block and are woken by burst-completion
//!   and task-retirement events.
//! * [`compmem_kpn`] — the YAPI-like Kahn-process-network runtime. Process
//!   networks implement the platform's `WorkloadDriver`; the functional
//!   scheduler (`Network::run_functional`) runs on the same event-queue
//!   engine, waking exactly the neighbours a firing can unblock.
//! * [`compmem_workloads`] — the multimedia task graphs of the paper's
//!   evaluation (two JPEG decoders + Canny, and an MPEG-2 decoder) with
//!   deterministic synthetic inputs.
//! * [`compmem`] — partition sizing (exact/greedy/equal-split optimisers),
//!   compositionality analysis, and the spec-driven experiment layer:
//!   every run is a `RunSpec` executed by one driver, and batches of
//!   independent runs fan out across threads (`Experiment::run_all`).
//!
//! The `compmem-bench` crate (not re-exported) holds the criterion benches,
//! the recorded `BENCH_*.json` baselines and the `repro` binary that
//! regenerates the paper's tables and figures.

#![forbid(unsafe_code)]

pub use compmem;
pub use compmem_cache;
pub use compmem_kpn;
pub use compmem_platform;
pub use compmem_trace;
pub use compmem_workloads;
