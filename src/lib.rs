//! Umbrella crate of the `compmem` reproduction suite.
//!
//! This crate only re-exports the workspace members so that the runnable
//! examples in `examples/` and the cross-crate integration tests in `tests/`
//! have a single dependency.
//!
//! Two documents complement this crate map:
//!
//! * [`docs/ARCHITECTURE.md`](../docs/ARCHITECTURE.md) — the layer-by-layer
//!   guide: the dataflow diagram, the "one pass, every shape"
//!   stack-distance invariant, and the table mapping the paper's figures
//!   and tables to the benches and tests that reproduce them.
//! * [`docs/CLI.md`](../docs/CLI.md) — a worked `compmem` session
//!   (record → profile → sweep-shapes → replay on tiny MPEG-2) whose
//!   command lines CI executes verbatim.
//!
//! # Crate map
//!
//! The workspace is layered bottom-up; each crate depends only on the ones
//! above it in this list:
//!
//! * [`compmem_trace`] — addresses, line/region arithmetic, the region
//!   table, access records and synthetic stream generators. Pure data; no
//!   simulation. Its `codec` module is the **binary trace IR** of the
//!   record/replay pipeline: delta-encoded addresses, varint cycle gaps
//!   and per-task/region dictionaries behind streaming
//!   `TraceWriter`/`TraceReader` codecs and the validated in-memory
//!   `EncodedTrace`; a trace embeds its region table, so it is a
//!   self-contained scenario. Its `curves` module is the **curve sidecar
//!   IR**: miss-rate curves persisted in a `.curves` file next to the
//!   trace, bound to the exact trace bytes by content hash, so stale or
//!   foreign sidecars are rejected (`CodecError`, never a panic).
//! * [`compmem_cache`] — the cache substrate. The four L2 organisations of
//!   the study (shared, set-partitioned, way-partitioned, profiling) all
//!   implement the **object-safe `CacheModel` trait** — including a
//!   default-implemented `access_batch`, so whole runs of accesses cost
//!   one virtual dispatch — and `OrganizationSpec` builds any of them as a
//!   `Box<dyn CacheModel>` from plain data. Per-key statistics and uniform
//!   `CacheSnapshot`s live here too. The miss-vs-size profiles
//!   (`MissProfiles`) that feed the optimiser are produced by the
//!   **single-pass `StackDistanceProfiler`**: per-key, per-set bounded
//!   Mattson reuse stacks at every power-of-two set count yield a
//!   `MissRateCurve` per entity — the exact miss count at every resolved
//!   cache shape from one pass over the L2-bound stream — and
//!   `MissRateCurves::to_profiles` converts them to any `CacheSizeLattice`.
//!   The shadow-cache `ProfilingCache` organisation remains as the
//!   cross-validation oracle (`tests/profiler_parity.rs` asserts both
//!   sources agree point for point). The same pass now also feeds an
//!   **aggregate** curve (every key folded into one stack bank) whose
//!   value at `(sets, ways)` is the exact shared-L2 miss count at that
//!   shape, and a `WindowedProfiler` emits a `MissRateCurves` snapshot
//!   per fixed-size window (differences of cumulative snapshots — summing
//!   windows reconstructs the whole run exactly) with a curve-delta
//!   phase detector (`WindowedCurves::phases`) and a streaming EWMA
//!   variant (`OnlinePhaseDetector` / `WindowedCurves::phases_online`).
//!   Partitioning is additionally a **time-varying policy**: a
//!   `PartitionSchedule` orders `(at_cycle, OrganizationSpec)` steps, and
//!   `CacheModel::reconfigure` applies a new `PartitionMap` /
//!   `WayAllocation` to the live cache — invalidating exactly the lines
//!   whose set/way ownership changed and returning `FlushStats` —
//!   with `PartitionMap::pack_stable` laying consecutive steps out so
//!   unchanged partitions keep their sets.
//! * [`compmem_platform`] — the CAKE-like multiprocessor simulator. A
//!   discrete-event `EventQueue` (min-heap of `(ready_cycle, actor)`)
//!   drives the run loop; processors execute workload bursts against one
//!   timing path (private L1s → shared bus → `Box<dyn CacheModel>` L2 →
//!   DRAM), with runs of consecutive memory operations batched through
//!   `MemorySystem::access_burst`. The `replay` module closes the loop:
//!   `System::run_traced` records every access through an `AccessTap`
//!   (e.g. straight into the trace IR), and `ReplaySystem` re-issues a
//!   recorded trace via `ReplayProcessor` actors on the same event queue —
//!   bit-identical cache statistics, no workload execution, with the
//!   organisation-invariant L1 filter cached per trace (`PreparedTrace`).
//!   Both run loops honour an installed `PartitionSchedule`: repartition
//!   events apply at their exact cycle boundaries (mid-burst boundaries
//!   split the L2 batch), flush write-backs are charged through the
//!   bus/DRAM timing path, and every fired switch is logged as a
//!   `RepartitionRecord` in the `SystemReport`.
//!   The `profile` module feeds the stack-distance profiler from all
//!   three traffic sources: `profile_trace` (a prepared trace, through
//!   the same cached L1 filter replays use), `profile_reader` (streaming
//!   decode, nothing materialised) and `TapProfiler` (an `AccessTap`
//!   carrying its own mirror L1 bank, so one live run yields the shared
//!   baseline *and* the full miss-rate curves) — each with a windowed
//!   sibling (`profile_trace_windowed`, `profile_reader_windowed`,
//!   `WindowedTapProfiler`), and `profile_trace_with_sidecar` persists
//!   curves in the `.curves` sidecar and skips the L1 filter entirely
//!   when a matching sidecar exists.
//! * [`compmem_kpn`] — the YAPI-like Kahn-process-network runtime. Process
//!   networks implement the platform's `WorkloadDriver`; the functional
//!   scheduler (`Network::run_functional`) runs on the same event-queue
//!   engine, waking exactly the neighbours a firing can unblock.
//! * [`compmem_workloads`] — the multimedia task graphs of the paper's
//!   evaluation (two JPEG decoders + Canny, and an MPEG-2 decoder) with
//!   deterministic synthetic inputs.
//! * [`compmem`] — partition sizing (exact/greedy/equal-split optimisers),
//!   compositionality analysis, and the spec-driven experiment layer:
//!   every run is a `ScenarioSpec` — L2 configuration, organisation and
//!   **traffic source** (`Live` application execution vs `Replay` of a
//!   recorded trace) — executed by one driver; batches of independent runs
//!   fan out across threads (`Experiment::run_all`), so an organisation
//!   sweep replays one recorded trace concurrently without re-executing
//!   the workload (`Experiment::record_trace` / `run_replay`). The paper
//!   flow's profiles are curve-derived (`Experiment::profile_curves` /
//!   `run_profiled`), with the shadow-bank path kept as
//!   `run_profiled_simulated` for cross-validation, and
//!   `allocation_problem_for_table` builds the optimiser's problem from
//!   any region table — an application's or a recorded trace's. Phase
//!   aware profiling rides the same flow: `Experiment::
//!   profile_curves_windowed` measures per-window curves live,
//!   `Experiment::phase_allocations` re-runs the optimizer per detected
//!   phase (plus the whole-run baseline), and `Experiment::sweep_shapes`
//!   / `sweep_shapes_from_curves` evaluate the **analytic L2
//!   size × associativity sweep** from one pass — cross-checked
//!   point-for-point against the replay sweep in
//!   `tests/shape_sweep_parity.rs`. Phase-aware *execution* closes the
//!   loop: a `ScenarioSpec` carries a `PartitionSchedule` (single-step
//!   constructors unchanged), `PhasePlan::to_schedule` turns per-phase
//!   sizings into repartition events, `Experiment::run_scheduled`
//!   executes them, and `validate_phase_plan` replays static-best vs
//!   phase-scheduled on the same trace with per-phase predicted vs
//!   measured miss deltas (`tests/schedule_parity.rs` pins the one-step
//!   parity and mid-run determinism). Profiling requires an LRU L2
//!   (`CoreError::NonLruProfiling` otherwise — the stack-distance
//!   identity holds for LRU only).
//!
//! The `compmem-bench` crate (not re-exported) holds the criterion benches,
//! the recorded `BENCH_*.json` baselines (guarded in CI by
//! `scripts/bench_check`, which re-runs the benches and fails on >25%
//! throughput regressions), the `repro` binary that regenerates the
//! paper's tables and figures, and the `compmem` CLI (`compmem record
//! --app mpeg2 --out t.cmt`, `compmem replay --trace t.cmt --org
//! set-partitioned`, `compmem sweep --trace t.cmt --l2-kb 32,64,128`,
//! `compmem profile --trace t.cmt` for the single-pass curves and the
//! allocation they imply — windowed with `--windows`/`--phases`, with
//! curves persisted to a `.curves` sidecar and auto-reused, and `compmem
//! sweep-shapes --trace t.cmt --check-replay on` for the analytic shape
//! sweep, and `compmem replay --trace t.cmt --schedule phases|FILE` to
//! execute partitioning as a time-varying policy — static-best vs
//! phase-scheduled on the same trace, with repartition flush accounting
//! and a savable/inspectable schedule file format) that drives the
//! record/replay/profile workflow from the shell; `docs/CLI.md` walks a
//! full session and CI executes its command lines verbatim.
//! `bench_check` additionally gates CI on machine-independent same-run
//! ratios (replay-vs-live, shadow-vs-single-pass, static-vs-scheduled
//! replay) alongside the absolute >25% throughput gate.

#![forbid(unsafe_code)]

pub use compmem;
pub use compmem_cache;
pub use compmem_kpn;
pub use compmem_platform;
pub use compmem_trace;
pub use compmem_workloads;
