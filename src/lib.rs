//! Umbrella crate of the `compmem` reproduction suite.
//!
//! This crate only re-exports the workspace members so that the runnable
//! examples in `examples/` and the cross-crate integration tests in `tests/`
//! have a single dependency. The actual functionality lives in:
//!
//! * [`compmem`] — partition sizing, compositionality analysis, experiments,
//! * [`compmem_cache`] — cache models (shared, set-partitioned, way-partitioned),
//! * [`compmem_platform`] — the CAKE-like multiprocessor simulator,
//! * [`compmem_kpn`] — the YAPI process-network runtime,
//! * [`compmem_workloads`] — the JPEG / Canny / MPEG-2 task graphs,
//! * [`compmem_trace`] — addresses, regions and access traces.

#![forbid(unsafe_code)]

pub use compmem;
pub use compmem_cache;
pub use compmem_kpn;
pub use compmem_platform;
pub use compmem_trace;
pub use compmem_workloads;
