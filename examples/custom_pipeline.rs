//! Build a custom process network with the public API and run it on the
//! multiprocessor with a shared and with a set-partitioned L2. The output
//! shows both sides of the paper's trade-off: the filter's lookup table is
//! isolated in its exclusive partition (its misses are identical in both
//! runs and co-runner independent), while the streaming source — squeezed
//! into a small partition — loses the capacity it enjoyed in the shared
//! cache and misses more (the effect discussed in §5 of the paper).
//!
//! Run with `cargo run --release --example custom_pipeline`.

use compmem_cache::{CacheConfig, PartitionKey, PartitionMap, SetPartitionedCache, SharedCache};
use compmem_kpn::{FireContext, FireResult, NetworkBuilder, Process, TaskLayout};
use compmem_platform::{PlatformConfig, System, TaskMapping};
use compmem_trace::{AddressSpace, RegionKind, ScalarArray, TaskId};

/// Produces a stream of samples from a private source buffer.
struct Source {
    task: TaskId,
    data: ScalarArray,
    cursor: usize,
    remaining_passes: usize,
}

impl Process for Source {
    fn name(&self) -> &str {
        "source"
    }
    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if self.cursor == self.data.len() {
            if self.remaining_passes == 0 {
                return FireResult::Finished;
            }
            self.remaining_passes -= 1;
            self.cursor = 0;
        }
        if ctx.space(0) < 16 {
            return FireResult::Blocked;
        }
        for _ in 0..16 {
            let v = self.data.read(ctx, self.task, self.cursor);
            ctx.compute(2);
            ctx.push(0, v);
            self.cursor += 1;
        }
        FireResult::Fired
    }
}

/// A table-driven filter with a large private lookup table (the task that
/// needs cache).
struct Filter {
    task: TaskId,
    table: ScalarArray,
}

impl Process for Filter {
    fn name(&self) -> &str {
        "filter"
    }
    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 16 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 16 {
            return FireResult::Blocked;
        }
        for _ in 0..16 {
            let v = ctx.pop(0);
            let index = (v.unsigned_abs() as usize * 97) % self.table.len();
            let coeff = self.table.read(ctx, self.task, index);
            ctx.compute(6);
            ctx.push(0, v.wrapping_mul(coeff) >> 4);
        }
        FireResult::Fired
    }
}

/// Accumulates the filtered stream.
struct Sink {
    sum: i64,
    received: usize,
    expected: usize,
}

impl Process for Sink {
    fn name(&self) -> &str {
        "sink"
    }
    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if self.received == self.expected {
            return FireResult::Finished;
        }
        if ctx.available(0) < 1 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        let v = ctx.pop(0);
        ctx.compute(1);
        self.sum += i64::from(v);
        self.received += 1;
        FireResult::Fired
    }
}

fn build(space: &mut AddressSpace) -> Result<compmem_kpn::Network, Box<dyn std::error::Error>> {
    let mut b = NetworkBuilder::new();
    // The source sweeps its 64 KB buffer four times (16 K samples per pass),
    // which in a shared cache repeatedly erodes the filter's lookup table.
    let passes = 4;
    let samples = passes * 16 * 1024;

    let t0 = b.next_task_id();
    let src_region =
        space.allocate_region("source.data", RegionKind::TaskData { task: t0 }, 64 * 1024)?;
    let mut data = space.array(src_region)?;
    for i in 0..data.len() {
        data.poke(i, (i as i32 * 31) % 251);
    }
    let src = b.add_process(
        Box::new(Source {
            task: t0,
            data,
            cursor: 0,
            remaining_passes: passes - 1,
        }),
        TaskLayout::with_code_size(space, "source", t0, 2048)?,
    );

    let t1 = b.next_task_id();
    let table_region =
        space.allocate_region("filter.table", RegionKind::TaskData { task: t1 }, 32 * 1024)?;
    let mut table = space.array(table_region)?;
    for i in 0..table.len() {
        table.poke(i, (i as i32 % 17) + 1);
    }
    let filter = b.add_process(
        Box::new(Filter { task: t1, table }),
        TaskLayout::with_code_size(space, "filter", t1, 4096)?,
    );

    let t2 = b.next_task_id();
    let sink = b.add_process(
        Box::new(Sink {
            sum: 0,
            received: 0,
            expected: samples,
        }),
        TaskLayout::with_code_size(space, "sink", t2, 1024)?,
    );

    let f0 = b.add_fifo(space, "src_to_filter", 64)?;
    let f1 = b.add_fifo(space, "filter_to_sink", 64)?;
    b.connect_output(src, 0, f0)?;
    b.connect_input(filter, 0, f0)?;
    b.connect_output(filter, 0, f1)?;
    b.connect_input(sink, 0, f1)?;
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let l2 = CacheConfig::with_size_bytes(64 * 1024, 4)?;
    let platform = PlatformConfig::default().processors(3);

    // Shared cache: the streaming source erodes the filter's lookup table.
    let mut space = AddressSpace::new();
    let mut network = build(&mut space)?;
    let mapping = TaskMapping::round_robin(&network.tasks(), 3);
    let mut system = System::new(platform, Box::new(SharedCache::new(l2)), mapping.clone())?;
    let shared = system.run(&mut network)?;

    // Partitioned cache: the filter gets half the cache exclusively.
    let mut space = AddressSpace::new();
    let mut network = build(&mut space)?;
    let mut map = PartitionMap::new(l2.geometry());
    map.assign(PartitionKey::Task(TaskId::new(0)), 0, 32)?;
    map.assign(PartitionKey::Task(TaskId::new(1)), 32, 128)?;
    map.assign(PartitionKey::Task(TaskId::new(2)), 160, 32)?;
    map.assign(
        PartitionKey::Buffer(compmem_trace::BufferId::new(0)),
        192,
        16,
    )?;
    map.assign(
        PartitionKey::Buffer(compmem_trace::BufferId::new(1)),
        208,
        16,
    )?;
    let cache = SetPartitionedCache::new(l2, space.table(), &map)?;
    let mut system = System::new(platform, Box::new(cache), mapping)?;
    let partitioned = system.run(&mut network)?;
    let filter_task = TaskId::new(1);

    println!("custom three-stage pipeline, 64 KB L2");
    println!("(filter misses are identical — its partition isolates it; the");
    println!(" streaming source pays for its smaller exclusive capacity)");
    println!(
        "shared:      filter L2 misses = {:5}, total misses = {:5}, CPI = {:.2}",
        shared.l2_misses_of_task(filter_task),
        shared.l2.misses,
        shared.average_cpi()
    );
    println!(
        "partitioned: filter L2 misses = {:5}, total misses = {:5}, CPI = {:.2}",
        partitioned.l2_misses_of_task(filter_task),
        partitioned.l2.misses,
        partitioned.average_cpi()
    );
    Ok(())
}
