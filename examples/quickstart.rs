//! Quickstart: run the paper's full method on a miniature instance of the
//! "two JPEG decoders + Canny" application and print the resulting tables.
//!
//! Run with `cargo run --release --example quickstart`.

use compmem::experiment::{Experiment, ExperimentConfig};
use compmem::report;
use compmem_cache::CacheConfig;
use compmem_workloads::apps::{jpeg_canny_app, JpegCannyParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature configuration so the example finishes in seconds: a 64 KB
    // shared L2 divided into 1 KB allocation units, and small pictures.
    let config = ExperimentConfig {
        l2: CacheConfig::with_size_bytes(64 * 1024, 4)?,
        sets_per_unit: 4,
        ..ExperimentConfig::default()
    };
    let params = JpegCannyParams::tiny();
    let experiment = Experiment::new(config, move || {
        jpeg_canny_app(&params).expect("tiny parameters are valid")
    });

    let outcome = experiment.run_paper_flow()?;

    println!("{}", report::format_allocation_table(&outcome));
    println!("{}", report::format_figure2(&outcome));
    println!("{}", report::format_figure3(&outcome));
    println!("{}", report::format_headline(&outcome));
    println!("{}", outcome.summary());
    Ok(())
}
