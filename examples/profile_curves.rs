//! Profile once, optimise many: the single-pass stack-distance workflow.
//!
//! One live run of the tiny MPEG-2 decode, with the `TapProfiler` riding
//! the shared baseline, yields every entity's exact miss count at every
//! power-of-two cache shape (`MissRateCurves`). The example then:
//!
//! 1. converts the curves into the miss profiles of the experiment's
//!    lattice and cross-validates them against the shadow-cache
//!    `ProfilingCache` simulation (identical, point for point);
//! 2. sizes the partitions with all three solvers from the same curves;
//! 3. re-converts the *same* curves on a second, finer lattice — no
//!    re-profiling, which is the whole point.
//!
//! Run with `cargo run --release --example profile_curves`.

use compmem::experiment::{Experiment, ExperimentConfig};
use compmem_cache::CacheConfig;
use compmem_workloads::apps::{mpeg2_app, Mpeg2Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        l2: CacheConfig::with_size_bytes(32 * 1024, 4)?,
        sets_per_unit: 2,
        ..ExperimentConfig::default()
    };
    let experiment = Experiment::new(config, move || {
        mpeg2_app(&Mpeg2Params::tiny()).expect("valid parameters")
    });

    // 1. One live shared-baseline run measures the curves on the side.
    let (outcome, curves) = experiment.profile_curves()?;
    let resolution = curves.resolution;
    println!(
        "profiled {} L2 accesses in one pass ({} entities, sets {}..={}, up to {} ways)",
        outcome.report.l2.accesses,
        curves.curves.len(),
        resolution.min_sets,
        resolution.max_sets,
        resolution.ways_cap,
    );

    // The old source of the same numbers: one shadow cache per lattice
    // point. Still here as the oracle — and it must agree exactly.
    let lattice = compmem::CacheSizeLattice::new(config.l2.geometry(), config.sets_per_unit);
    let profiles = curves.to_profiles(&lattice, config.l2.geometry().ways())?;
    let (_, simulated) = experiment.run_profiled_simulated()?;
    assert_eq!(profiles, simulated, "curves must match the shadow bank");
    println!("cross-validated against the shadow-cache bank: identical at every lattice point\n");

    // A few entities' curves, as misses by partition size.
    println!(
        "{:<14} {:>9}  misses at 1,2,4,... units",
        "entity", "accesses"
    );
    for (key, profile) in profiles.profiles.iter().take(6) {
        let points: Vec<String> = profile
            .misses_by_units
            .values()
            .map(|m| m.to_string())
            .collect();
        println!(
            "{:<14} {:>9}  {}",
            key.to_string(),
            profile.accesses,
            points.join(", ")
        );
    }

    // 2. Size the partitions three ways from the same measurement.
    let app = mpeg2_app(&Mpeg2Params::tiny())?;
    println!("\npartition sizing from the curve-derived profiles:");
    for allocation in experiment.compare_optimizers(app.space.table(), &profiles)? {
        println!(
            "  {:<12} {:>8} predicted misses, {:>3}/{} units used",
            allocation.kind.to_string(),
            allocation.predicted_misses,
            allocation.total_units,
            lattice.total_units,
        );
    }
    // 3. The same curves answer for a *different* lattice without another
    // run: here twice as coarse an allocation granularity.
    let coarse = compmem::CacheSizeLattice::new(config.l2.geometry(), config.sets_per_unit * 2);
    let coarse_profiles = curves.to_profiles(&coarse, config.l2.geometry().ways())?;
    println!(
        "\nsame pass, different lattice ({} candidate sizes instead of {}): \
         {} entities re-profiled for free",
        coarse.candidate_units.len(),
        lattice.candidate_units.len(),
        coarse_profiles.profiles.len(),
    );
    Ok(())
}
