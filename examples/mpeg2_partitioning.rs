//! Compare the three L2 organisations of the study — conventional shared
//! cache, the paper's set-partitioned cache and the column-caching
//! (way-partitioned) baseline — on the MPEG-2 decoder.
//!
//! Run with `cargo run --release --example mpeg2_partitioning`.

use compmem::experiment::{Experiment, ExperimentConfig};
use compmem_cache::CacheConfig;
use compmem_workloads::apps::{mpeg2_app, Mpeg2Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        l2: CacheConfig::with_size_bytes(64 * 1024, 4)?,
        sets_per_unit: 4,
        ..ExperimentConfig::default()
    };
    let params = Mpeg2Params {
        width: 64,
        height: 48,
        pictures: 2,
        seed: 42,
    };
    let experiment = Experiment::new(config, move || {
        mpeg2_app(&params).expect("parameters are valid")
    });

    // The paper's flow: shared baseline (which also profiles), optimiser,
    // partitioned run.
    let outcome = experiment.run_paper_flow()?;
    // The two ablation runs are independent of each other and of the flow:
    // describe them as specs and execute them in parallel threads.
    let specs = vec![
        // The column-caching ablation.
        experiment.way_partitioned_spec(),
        // The larger shared cache the paper also reports for MPEG-2.
        experiment.shared_spec_with_l2(CacheConfig::with_size_bytes(128 * 1024, 4)?),
    ];
    let mut results = experiment.run_all(&specs).into_iter();
    let way = results.next().expect("two specs")?;
    let large_shared = results.next().expect("two specs")?;

    println!(
        "MPEG-2 decoder, {} pictures of {}x{}",
        params.pictures, params.width, params.height
    );
    println!(
        "{:<34} {:>10} {:>12} {:>8}",
        "organisation", "L2 misses", "miss rate", "CPI"
    );
    let row = |name: &str, misses: u64, rate: f64, cpi: f64| {
        println!("{name:<34} {misses:>10} {:>11.2}% {cpi:>8.2}", 100.0 * rate);
    };
    row(
        "shared 64 KB",
        outcome.shared.report.l2.misses,
        outcome.shared_miss_rate(),
        outcome.shared_cpi(),
    );
    row(
        "set-partitioned 64 KB (paper)",
        outcome.partitioned.report.l2.misses,
        outcome.partitioned_miss_rate(),
        outcome.partitioned_cpi(),
    );
    row(
        "way-partitioned 64 KB (related work)",
        way.report.l2.misses,
        way.report.l2_miss_rate(),
        way.report.average_cpi(),
    );
    row(
        "shared 128 KB",
        large_shared.report.l2.misses,
        large_shared.report.l2_miss_rate(),
        large_shared.report.average_cpi(),
    );
    println!();
    println!(
        "compositionality error of the partitioned run: {:.2}%",
        100.0 * outcome.compositionality.max_relative_difference()
    );
    Ok(())
}
