//! Record once, replay many: the trace record/replay workflow.
//!
//! Records a small MPEG-2 decode into the binary trace IR, shows the
//! encoded size, proves the replay is exact under the recorded
//! organisation, and then sweeps three L2 organisations over the one
//! recorded trace without re-executing the workload — the `compmem`
//! CLI (`compmem record` / `replay` / `sweep`) wraps exactly this flow.
//!
//! Run with `cargo run --release --example trace_replay`.

use compmem::experiment::{run_replay, Experiment, ExperimentConfig, ScenarioSpec};
use compmem_cache::{CacheConfig, OrganizationSpec, PartitionKey, PartitionMap, WayAllocation};
use compmem_workloads::apps::{mpeg2_app, Mpeg2Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        l2: CacheConfig::with_size_bytes(64 * 1024, 4)?,
        sets_per_unit: 4,
        ..ExperimentConfig::default()
    };
    let params = Mpeg2Params::tiny();
    let experiment = Experiment::new(config, move || {
        mpeg2_app(&params).expect("valid parameters")
    });

    // 1. Record: one live run, every memory access streamed into the IR.
    let shared = experiment.shared_spec();
    let (live, trace) = experiment.record_trace(&shared)?;
    let summary = trace.summary();
    println!(
        "recorded {} accesses in {} runs on {} processors ({} bytes, {:.2} B/access)",
        summary.accesses,
        summary.runs,
        summary.processors,
        summary.encoded_bytes,
        summary.bytes_per_access()
    );

    // 2. Replay is exact: same organisation -> byte-identical snapshot.
    let replayed = experiment.run(&shared.clone().replaying(trace.clone()))?;
    assert_eq!(live.l2_snapshot, replayed.l2_snapshot);
    println!(
        "replay reproduces the live run exactly: {} L2 misses either way",
        replayed.report.l2.misses
    );

    // 3. Sweep: one trace, many organisations, no workload re-execution.
    // The trace embeds its region table, so partitioned organisations can
    // be built without the application.
    let l2 = experiment.config().l2;
    let keys = PartitionKey::distinct_keys(trace.table());
    let organisations = vec![
        ("shared", OrganizationSpec::Shared),
        (
            "set-partitioned",
            OrganizationSpec::SetPartitioned(PartitionMap::equal_split(l2.geometry(), &keys)?),
        ),
        (
            "way-partitioned",
            OrganizationSpec::WayPartitioned(WayAllocation::equal_split(l2.geometry(), &keys)),
        ),
    ];

    println!("\nsweep over the recorded trace:");
    println!(
        "{:<18} {:>12} {:>12} {:>10}",
        "organisation", "l2 accesses", "l2 misses", "missrate"
    );
    for (label, organization) in organisations {
        let spec = ScenarioSpec::replay(l2, organization, trace.clone());
        let outcome = run_replay(&experiment.config().platform, &spec)?;
        println!(
            "{label:<18} {:>12} {:>12} {:>9.2}%",
            outcome.report.l2.accesses,
            outcome.report.l2.misses,
            100.0 * outcome.report.l2_miss_rate()
        );
    }
    Ok(())
}
