//! Phase-aware profiling: windows, phase detection and per-phase
//! partition sizing from one live run.
//!
//! Multimedia workloads are phasic — a whole-run miss-rate curve averages
//! away shifts the partition optimizer could exploit. This example runs
//! the tiny MPEG-2 decode once on the shared baseline while a windowed
//! profiler tap measures a `MissRateCurves` snapshot per window, then:
//!
//! 1. checks the windowed/whole-run consistency invariant (summing the
//!    windows reconstructs the whole-run curves exactly);
//! 2. segments the windows into phases with the curve-delta detector and
//!    sizes the partitions once per phase plus once for the whole run;
//! 3. evaluates the analytic L2 size × associativity sweep from the same
//!    pass — the exact shared-cache miss count at every resolved shape,
//!    with no replay per shape.
//!
//! Run with `cargo run --release --example phase_profile`.

use compmem::experiment::{Experiment, ExperimentConfig};
use compmem::WindowConfig;
use compmem_cache::CacheConfig;
use compmem_workloads::apps::{mpeg2_app, Mpeg2Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        l2: CacheConfig::with_size_bytes(32 * 1024, 4)?,
        sets_per_unit: 2,
        ..ExperimentConfig::default()
    };
    let experiment = Experiment::new(config, move || {
        mpeg2_app(&Mpeg2Params::tiny()).expect("valid parameters")
    });

    // 1. One live run, windowed: a curve snapshot every 400 L2-bound
    // accesses, measured by the tap riding the shared baseline.
    let window = WindowConfig::accesses(400)?;
    let (outcome, windowed) = experiment.profile_curves_windowed(window)?;
    println!(
        "profiled {} L2 accesses in {} windows of {} accesses each",
        outcome.report.l2.accesses,
        windowed.windows.len(),
        window.length,
    );
    assert_eq!(
        windowed.reconstruct_total(),
        windowed.total,
        "summing the windows must reconstruct the whole-run curves"
    );
    let geometry = config.l2.geometry();
    for w in &windowed.windows {
        println!(
            "  window {:>2}: cycles {:>7}..{:<7} {:>5} accesses, full-L2 miss rate {:>6.2}%",
            w.index,
            w.start_cycle,
            w.end_cycle,
            w.curves.accesses(),
            100.0
                * w.curves
                    .aggregate
                    .miss_rate(geometry.sets(), geometry.ways())?,
        );
    }

    // 2. Phase detection + per-phase partition sizing (the optimizer
    // re-runs on each phase's merged curves; FIFOs stay pinned).
    let app = mpeg2_app(&Mpeg2Params::tiny())?;
    let plan = experiment.phase_allocations(&windowed, 0.1, app.space.table())?;
    println!(
        "\n{} phase(s) at curve-delta threshold {}; whole-run baseline predicts {} misses",
        plan.phases.len(),
        plan.threshold,
        plan.whole_run.predicted_misses,
    );
    for (i, phase) in plan.phases.iter().enumerate() {
        println!(
            "  phase {i}: windows {:>2}..={:<2} {:>6} accesses -> {:>5} predicted misses",
            phase.first_window,
            phase.last_window,
            phase.accesses,
            phase.allocation.predicted_misses,
        );
    }
    println!(
        "  per-phase repartitioning predicts {} misses ({})",
        plan.predicted_misses_per_phase(),
        if plan.has_distinct_allocations() {
            "phases chose different allocations"
        } else {
            "all phases agree with the whole-run split"
        },
    );

    // 3. The analytic shape sweep from the same pass: every power-of-two
    // L2 shape, no replay per shape. (The parity test replays every one
    // of these points and asserts exact equality.)
    let sweep = experiment.sweep_shapes(&windowed.total);
    println!(
        "\nanalytic shape sweep over {} L2-bound accesses ({} shapes from one pass):",
        sweep.accesses,
        sweep.points.len(),
    );
    print!("{:>14}", "sets \\ ways");
    for ways in sweep.way_counts() {
        print!(" {:>9}", format!("{ways}-way"));
    }
    println!();
    for sets in sweep.set_counts() {
        print!("{:>14}", format!("{sets} sets"));
        for ways in sweep.way_counts() {
            print!(
                " {:>9}",
                sweep.point(sets, ways).expect("grid point").misses
            );
        }
        println!();
    }
    Ok(())
}
